package layout

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sherman/internal/rdma"
)

func formats() []Format {
	return []Format{
		DefaultFormat(TwoLevel),
		DefaultFormat(Checksum),
		NewFormat(TwoLevel, 8, 256),
		NewFormat(Checksum, 8, 256),
		NewFormat(TwoLevel, 32, 1024),
		NewFormat(Checksum, 64, 2048),
	}
}

func TestFormatGeometry(t *testing.T) {
	for _, f := range formats() {
		if f.LeafCap < 2 || f.IntCap < 2 {
			t.Fatalf("%+v: capacities too small", f)
		}
		// Last leaf entry must fit before the trailing RNV byte (TwoLevel)
		// or the node end (Checksum).
		end := f.leafEntryOff(f.LeafCap-1) + f.LeafEntSize
		limit := f.NodeSize
		if f.Mode == TwoLevel {
			limit-- // trailing RNV
		}
		if end > limit {
			t.Fatalf("%v keySize=%d: leaf entry %d overruns node (end %d > %d)",
				f.Mode, f.KeySize, f.LeafCap-1, end, limit)
		}
		endI := f.intEntryOff(f.IntCap-1) + f.IntEntSize
		if endI > limit {
			t.Fatalf("%v keySize=%d: internal entry overruns node", f.Mode, f.KeySize)
		}
	}
}

func TestFormatFixedCap(t *testing.T) {
	for _, mode := range []Mode{TwoLevel, Checksum} {
		for _, ks := range []int{16, 64, 256, 1024} {
			f := NewFormatFixedCap(mode, ks, 32)
			if f.LeafCap != 32 {
				t.Fatalf("%v ks=%d: leaf cap %d, want 32", mode, ks, f.LeafCap)
			}
			if f.NodeSize%64 != 0 {
				t.Fatalf("node size %d not line aligned", f.NodeSize)
			}
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, f := range formats() {
		n := NewNodeBuf(f)
		n.Init(3, 100, 5000)
		n.SetSibling(0x1234)
		if n.Level() != 3 || !n.Alive() {
			t.Fatal("level/alive mismatch")
		}
		if n.LowerFence() != 100 || n.UpperFence() != 5000 {
			t.Fatal("fence mismatch")
		}
		if n.Sibling() != 0x1234 {
			t.Fatal("sibling mismatch")
		}
		if !n.Covers(100) || !n.Covers(4999) || n.Covers(99) || n.Covers(5000) {
			t.Fatal("Covers wrong")
		}
		n.SetUpperFence(NoUpperBound)
		if !n.Covers(^uint64(0) - 1) {
			t.Fatal("unbounded Covers wrong")
		}
	}
}

func TestNodeVersionConsistency(t *testing.T) {
	f := DefaultFormat(TwoLevel)
	n := NewNodeBuf(f)
	n.Init(0, 0, NoUpperBound)
	if !n.Consistent() {
		t.Fatal("fresh node inconsistent")
	}
	n.BumpNodeVersions()
	if !n.Consistent() {
		t.Fatal("bumped node inconsistent")
	}
	if n.FNV() != 1 {
		t.Fatalf("FNV = %d, want 1", n.FNV())
	}
	// A torn write: front version updated, rear not.
	n.B[0] = (n.B[0] + 1) & 0xF
	if n.Consistent() {
		t.Fatal("torn node passed the version check")
	}
	// Wraparound: 16 bumps return to the same version value.
	n.B[0] = n.B[f.NodeSize-1]
	v := n.FNV()
	for i := 0; i < 16; i++ {
		n.BumpNodeVersions()
	}
	if n.FNV() != v {
		t.Fatalf("versions should wrap modulo 16")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	f := DefaultFormat(Checksum)
	l := NewLeaf(f, 0, NoUpperBound)
	l.InsertSorted(10, 100)
	l.InsertSorted(20, 200)
	l.UpdateChecksum()
	if !l.Consistent() {
		t.Fatal("fresh checksum inconsistent")
	}
	// Flip one byte anywhere in the entry area.
	off, _ := l.EntrySpan(0)
	l.B[off] ^= 0xFF
	if l.Consistent() {
		t.Fatal("corruption not detected")
	}
}

func TestLeafUnsortedInsertFind(t *testing.T) {
	f := NewFormat(TwoLevel, 8, 512)
	l := NewLeaf(f, 0, NoUpperBound)
	if l.Count() != 0 {
		t.Fatal("fresh leaf not empty")
	}
	keys := []uint64{42, 7, 99, 1, 63}
	for _, k := range keys {
		i := l.FindFree()
		if i < 0 {
			t.Fatal("no free slot")
		}
		l.SetEntry(i, k, k*2)
	}
	for _, k := range keys {
		i, ok := l.Find(k)
		if !ok || l.Value(i) != k*2 {
			t.Fatalf("Find(%d) failed", k)
		}
		if !l.EntryConsistent(i) {
			t.Fatalf("entry %d inconsistent", i)
		}
	}
	if _, ok := l.Find(1000); ok {
		t.Fatal("found absent key")
	}
	kvs := l.Entries()
	if len(kvs) != len(keys) {
		t.Fatalf("Entries: %d, want %d", len(kvs), len(keys))
	}
	for i := 1; i < len(kvs); i++ {
		if kvs[i].Key <= kvs[i-1].Key {
			t.Fatal("Entries not sorted")
		}
	}
}

func TestLeafEntryVersionsDetectTorn(t *testing.T) {
	f := DefaultFormat(TwoLevel)
	l := NewLeaf(f, 0, NoUpperBound)
	l.SetEntry(0, 5, 50)
	off, size := l.EntrySpan(0)
	// Simulate a torn entry write: FEV updated, REV stale.
	l.B[off] = (l.B[off] + 1) & 0xF
	if l.EntryConsistent(0) {
		t.Fatal("torn entry passed version check")
	}
	_ = size
}

func TestLeafEntrySpanWidth(t *testing.T) {
	// The non-split write-back granule: FEV + key + value + REV.
	f := DefaultFormat(TwoLevel)
	l := NewLeaf(f, 0, NoUpperBound)
	_, size := l.EntrySpan(0)
	if size != 1+8+8+1 {
		t.Fatalf("entry span = %d, want 18", size)
	}
}

func TestLeafClearEntry(t *testing.T) {
	f := DefaultFormat(TwoLevel)
	l := NewLeaf(f, 0, NoUpperBound)
	l.SetEntry(0, 5, 50)
	l.ClearEntry(0)
	if _, ok := l.Find(5); ok {
		t.Fatal("cleared key still found")
	}
	if !l.EntryConsistent(0) {
		t.Fatal("cleared entry inconsistent")
	}
	if l.FindFree() != 0 {
		t.Fatal("cleared slot not reusable")
	}
}

func TestLeafSortedInsertDelete(t *testing.T) {
	f := NewFormat(Checksum, 8, 512)
	l := NewLeaf(f, 0, NoUpperBound)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		if !l.InsertSorted(k, k+100) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if l.Count() != 5 {
		t.Fatalf("count %d", l.Count())
	}
	for i := 1; i < l.Count(); i++ {
		if l.Key(i) <= l.Key(i-1) {
			t.Fatal("not sorted")
		}
	}
	// Update in place.
	l.InsertSorted(3, 999)
	if i, ok := l.Find(3); !ok || l.Value(i) != 999 {
		t.Fatal("update failed")
	}
	if l.Count() != 5 {
		t.Fatal("update changed count")
	}
	if !l.DeleteSorted(5) {
		t.Fatal("delete failed")
	}
	if _, ok := l.Find(5); ok {
		t.Fatal("deleted key present")
	}
	if l.DeleteSorted(5) {
		t.Fatal("double delete reported success")
	}
	if l.Count() != 4 {
		t.Fatalf("count after delete %d", l.Count())
	}
}

func TestLeafSortedFull(t *testing.T) {
	f := NewFormat(Checksum, 8, 256)
	l := NewLeaf(f, 0, NoUpperBound)
	for i := 0; i < f.LeafCap; i++ {
		if !l.InsertSorted(uint64(i+1), 1) {
			t.Fatalf("insert %d failed below cap", i)
		}
	}
	if l.InsertSorted(uint64(f.LeafCap+1), 1) {
		t.Fatal("insert beyond cap succeeded")
	}
	// Updating an existing key must still work when full.
	if !l.InsertSorted(1, 42) {
		t.Fatal("in-place update failed on full leaf")
	}
}

func TestSetEntriesRoundTrip(t *testing.T) {
	for _, f := range formats() {
		l := NewLeaf(f, 0, NoUpperBound)
		kvs := []KV{{1, 10}, {5, 50}, {9, 90}}
		l.SetEntries(kvs)
		got := l.Entries()
		if len(got) != len(kvs) {
			t.Fatalf("%v: got %d entries", f.Mode, len(got))
		}
		for i := range kvs {
			if got[i] != kvs[i] {
				t.Fatalf("%v: entry %d = %+v, want %+v", f.Mode, i, got[i], kvs[i])
			}
		}
	}
}

// TestLeafPropertyRoundTrip is a property test: any set of distinct nonzero
// keys inserted into a leaf is fully recoverable and sorted by Entries.
func TestLeafPropertyRoundTrip(t *testing.T) {
	for _, f := range []Format{DefaultFormat(TwoLevel), DefaultFormat(Checksum)} {
		fn := func(seed uint64) bool {
			rng := rand.New(rand.NewPCG(seed, 1))
			n := int(rng.Uint64N(uint64(f.LeafCap))) + 1
			l := NewLeaf(f, 0, NoUpperBound)
			want := map[uint64]uint64{}
			for len(want) < n {
				k := rng.Uint64()%1_000_000 + 1
				v := rng.Uint64() | 1
				want[k] = v
				if f.Mode == Checksum {
					l.InsertSorted(k, v)
				} else if i, ok := l.Find(k); ok {
					l.SetEntry(i, k, v)
				} else {
					l.SetEntry(l.FindFree(), k, v)
				}
			}
			got := l.Entries()
			if len(got) != len(want) {
				return false
			}
			prev := uint64(0)
			for _, kv := range got {
				if kv.Key <= prev || want[kv.Key] != kv.Value {
					return false
				}
				prev = kv.Key
			}
			return true
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%v: %v", f.Mode, err)
		}
	}
}

func TestInternalInsertSearch(t *testing.T) {
	for _, f := range formats() {
		in := NewInternal(f, 1, 0, NoUpperBound)
		in.SetLeftmost(0x10)
		for _, k := range []uint64{100, 50, 150} {
			if !in.Insert(k, rdma.Addr(k)) {
				t.Fatalf("insert %d failed", k)
			}
		}
		cases := []struct {
			key  uint64
			want uint64
		}{
			{10, 0x10}, {49, 0x10}, {50, 50}, {99, 50},
			{100, 100}, {149, 100}, {150, 150}, {1 << 40, 150},
		}
		for _, c := range cases {
			got, _ := in.ChildFor(c.key)
			if uint64(got) != c.want {
				t.Fatalf("%v: ChildFor(%d) = %#x, want %#x", f.Mode, c.key, got, c.want)
			}
		}
	}
}

func TestInternalDuplicateInsert(t *testing.T) {
	f := DefaultFormat(TwoLevel)
	in := NewInternal(f, 1, 0, NoUpperBound)
	in.Insert(10, 1)
	if !in.Insert(10, 2) {
		t.Fatal("duplicate insert failed")
	}
	if in.Count() != 1 {
		t.Fatal("duplicate insert grew count")
	}
	got, _ := in.ChildFor(10)
	if got != 2 {
		t.Fatal("duplicate insert did not overwrite")
	}
}

func TestInternalSplit(t *testing.T) {
	for _, f := range formats() {
		in := NewInternal(f, 2, 0, NoUpperBound)
		in.SetLeftmost(1)
		n := f.IntCap
		for i := 0; i < n; i++ {
			in.Insert(uint64(i+1)*10, rdma.Addr(i+2))
		}
		right := NewInternal(f, 2, 0, 0)
		sep := in.SplitInto(right, rdma.Addr(0xbeef))
		if in.UpperFence() != sep || right.LowerFence() != sep {
			t.Fatalf("%v: fences not stitched at separator", f.Mode)
		}
		if in.Sibling() != rdma.Addr(0xbeef) {
			t.Fatal("left sibling not set")
		}
		if right.Level() != 2 {
			t.Fatal("right level wrong")
		}
		// The median's child becomes right's leftmost; key counts add up to
		// cap-1 (one key moves up).
		if in.Count()+right.Count() != n-1 {
			t.Fatalf("%v: counts %d+%d != %d", f.Mode, in.Count(), right.Count(), n-1)
		}
		// Every key routes to the same child as before the split.
		for i := 0; i < n; i++ {
			k := uint64(i+1) * 10
			var got rdma.Addr
			if k < sep {
				got, _ = in.ChildFor(k)
			} else {
				got, _ = right.ChildFor(k)
			}
			if got != rdma.Addr(i+2) {
				t.Fatalf("%v: key %d routes to %v, want %v", f.Mode, k, got, rdma.Addr(i+2))
			}
		}
	}
}

func TestChildrenFrom(t *testing.T) {
	f := DefaultFormat(TwoLevel)
	in := NewInternal(f, 1, 0, NoUpperBound)
	in.SetLeftmost(1)
	in.Insert(10, 2)
	in.Insert(20, 3)
	in.Insert(30, 4)
	if got := in.ChildrenFrom(0); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("ChildrenFrom(0) = %v", got)
	}
	if got := in.ChildrenFrom(15); len(got) != 3 || got[0] != 2 {
		t.Fatalf("ChildrenFrom(15) = %v", got)
	}
	if got := in.ChildrenFrom(30); len(got) != 1 || got[0] != 4 {
		t.Fatalf("ChildrenFrom(30) = %v", got)
	}
}

func TestKeyPadding(t *testing.T) {
	// Larger wire keys must not corrupt neighbors and must round-trip.
	f := NewFormat(TwoLevel, 128, 8192)
	l := NewLeaf(f, 0, NoUpperBound)
	l.SetEntry(0, 7, 70)
	l.SetEntry(1, 9, 90)
	if k := l.Key(0); k != 7 {
		t.Fatalf("padded key = %d", k)
	}
	if v := l.Value(1); v != 90 {
		t.Fatalf("neighbor value = %d", v)
	}
}
