package core

import (
	"fmt"

	"sherman/internal/layout"
	"sherman/internal/rdma"
)

// TreeStats is a structural snapshot of the tree, collected with raw reads.
type TreeStats struct {
	// Height is the number of levels (a lone leaf is height 1).
	Height int
	// InternalNodes and LeafNodes count reachable nodes per kind.
	InternalNodes int
	LeafNodes     int
	// Entries is the number of live key-value pairs.
	Entries int
	// LeafFill is the mean fraction of leaf slots in use.
	LeafFill float64
	// BytesUsed is the memory footprint of reachable nodes.
	BytesUsed int64
	// MinLeafFill is the emptiest reachable leaf's fill fraction (1 for an
	// empty tree); a low value indicates delete-driven fragmentation that
	// Compact can reclaim.
	MinLeafFill float64
}

// Stats walks the tree and reports structural statistics. Like Validate, it
// uses raw (untimed) reads and must not run concurrently with writers.
func (t *Tree) Stats() TreeStats {
	st := TreeStats{MinLeafFill: 1}
	rootAddr, level := t.rawRoot()
	st.Height = int(level) + 1
	t.statsNode(rootAddr, &st)
	if st.LeafNodes > 0 {
		st.LeafFill /= float64(st.LeafNodes)
	}
	return st
}

func (t *Tree) statsNode(a rdma.Addr, st *TreeStats) {
	f := t.cfg.Format
	buf := make([]byte, f.NodeSize)
	t.cl.RawRead(a, buf)
	n := layout.ViewNode(f, buf)
	st.BytesUsed += int64(f.NodeSize)
	if n.IsLeaf() {
		st.LeafNodes++
		cnt := layout.AsLeaf(n).Count()
		st.Entries += cnt
		fill := float64(cnt) / float64(f.LeafCap)
		st.LeafFill += fill
		if fill < st.MinLeafFill {
			st.MinLeafFill = fill
		}
		return
	}
	st.InternalNodes++
	in := layout.AsInternal(n)
	t.statsNode(in.Leftmost(), st)
	for _, s := range in.Separators() {
		t.statsNode(s.Child, st)
	}
}

// CompactResult reports what an offline compaction did.
type CompactResult struct {
	// EntriesKept is the number of live pairs carried over.
	EntriesKept int
	// NodesBefore and NodesAfter count reachable nodes.
	NodesBefore int
	NodesAfter  int
	// BytesReclaimed is the footprint difference; the freed nodes' alive
	// bits are cleared (§4.2.4) so stale readers detect them.
	BytesReclaimed int64
}

// Compact rebuilds the tree at the configured bulkload fill factor,
// reclaiming the fragmentation left by deletes (cleared slots, underfull
// and empty leaves). It is an offline maintenance operation: the tree must
// be quiesced — no concurrent sessions — exactly like Bulkload. Old nodes
// are freed by clearing their alive bit, so a client thread resuming with
// stale cached steering will fail validation and retraverse (§4.2.4).
//
// Structural merging during deletes is deliberately not performed on the
// hot path (matching the paper's evaluation and the authors' released
// code); Compact is the offline counterpart that restores packing.
func (t *Tree) Compact() CompactResult {
	before := t.Stats()

	// Collect all live entries in key order, remembering every reachable
	// node so it can be freed after the rebuild.
	var kvs []layout.KV
	var old []rdma.Addr
	rootAddr, _ := t.rawRoot()
	t.collect(rootAddr, &kvs, &old)

	t.freeNodes(old)

	if len(kvs) == 0 {
		// Rebuild to a single empty leaf.
		b := t.cl.NewBulk()
		rootAddr := b.Alloc(t.cfg.Format.NodeSize)
		leaf := layout.NewLeaf(t.cfg.Format, 0, layout.NoUpperBound)
		if t.cfg.Format.Mode == layout.Checksum {
			leaf.UpdateChecksum()
		}
		t.cl.RawWrite(rootAddr, leaf.B)
		t.cl.SetRoot(rootAddr, 0)
	} else {
		t.Bulkload(kvs)
	}
	t.dropCaches()

	after := t.Stats()
	return CompactResult{
		EntriesKept:    len(kvs),
		NodesBefore:    before.LeafNodes + before.InternalNodes,
		NodesAfter:     after.LeafNodes + after.InternalNodes,
		BytesReclaimed: before.BytesUsed - after.BytesUsed,
	}
}

// collect appends the subtree's live entries in key order and records node
// addresses.
func (t *Tree) collect(a rdma.Addr, kvs *[]layout.KV, nodes *[]rdma.Addr) {
	f := t.cfg.Format
	buf := make([]byte, f.NodeSize)
	t.cl.RawRead(a, buf)
	n := layout.ViewNode(f, buf)
	*nodes = append(*nodes, a)
	if n.IsLeaf() {
		*kvs = append(*kvs, layout.AsLeaf(n).Entries()...)
		return
	}
	in := layout.AsInternal(n)
	t.collect(in.Leftmost(), kvs, nodes)
	for _, s := range in.Separators() {
		t.collect(s.Child, kvs, nodes)
	}
}

// freeNodes clears the alive bit of each node (the free-bit deallocation of
// §4.2.4). The memory itself is not returned to the memory servers — the
// paper's allocator does not reclaim chunks either; freed nodes are
// tombstones that steer stale readers back to the root.
func (t *Tree) freeNodes(addrs []rdma.Addr) {
	for _, a := range addrs {
		t.cl.RawWrite(a.Add(layout.AliveOffset), []byte{0})
	}
}

// dropCaches clears every compute server's index cache after a structural
// rebuild, so sessions opened later start from the new root.
func (t *Tree) dropCaches() {
	for i := range t.caches {
		t.caches[i] = newCSCache(t.cfg)
	}
}

// String renders the stats compactly.
func (s TreeStats) String() string {
	return fmt.Sprintf("height=%d internal=%d leaves=%d entries=%d fill=%.2f minFill=%.2f bytes=%d",
		s.Height, s.InternalNodes, s.LeafNodes, s.Entries, s.LeafFill, s.MinLeafFill, s.BytesUsed)
}
