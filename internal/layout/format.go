// Package layout defines the on-wire binary formats of tree nodes (Figures
// 4 and 8 of the paper) and in-place views over node buffers.
//
// Two consistency modes are implemented:
//
//   - TwoLevel (Sherman, §4.4): unsorted leaves whose entries each carry a
//     pair of 4-bit entry versions (FEV/REV), plus a pair of 4-bit node
//     versions (FNV/RNV) at the node's first and last byte. Insertions and
//     deletions without structural changes write back only the touched
//     entry; splits/merges bump node versions and write the whole node.
//   - Checksum (FG/FG+, §3.2.3): sorted nodes protected by a CRC64 covering
//     the whole node, recomputed on every modification and verified on every
//     lock-free read — the coarse-grained scheme whose write amplification
//     Sherman eliminates.
//
// All views operate on client-local copies of node buffers; RDMA verbs move
// the raw bytes.
package layout

import "fmt"

// Mode selects the consistency-check mechanism and node layout.
type Mode int

// Layout modes.
const (
	// TwoLevel is Sherman's unsorted-leaf, entry+node version layout.
	TwoLevel Mode = iota
	// Checksum is the FG-style sorted layout with a whole-node CRC64.
	Checksum
)

// String names the mode.
func (m Mode) String() string {
	if m == Checksum {
		return "checksum"
	}
	return "two-level"
}

// Header layout shared by all nodes. The first byte is FNV so that the
// front node version is in the first DMA line and the rear version (last
// byte) in the last line, giving the torn-write detection window of §4.4.
const (
	offFNV    = 0  // 1 B: front node version (TwoLevel) / unused (Checksum)
	offAlive  = 1  // 1 B: 1 = allocated, 0 = freed (§4.2.4 free bit)
	offLevel  = 2  // 1 B: node level; leaves are level 0
	offLower  = 4  // 8 B: inclusive lower fence key
	offUpper  = 12 // 8 B: exclusive upper fence key (MaxUint64 = +inf)
	offSib    = 20 // 8 B: right-sibling pointer (B-link, §4.2.1)
	headerEnd = 28
)

// checksum-mode extras: the CRC sits right after the shared header and is
// excluded from its own coverage.
const (
	offChecksum   = headerEnd // 8 B (Checksum mode only)
	checksumBody  = offChecksum + 8
	offCountCksum = checksumBody // 2 B entry count (Checksum mode)
)

// two-level-mode extras for internal nodes (leaves have no count field —
// they are unsorted and scanned).
const offCountTL = headerEnd // 2 B entry count (TwoLevel internal)

// NoUpperBound is the exclusive upper fence of the right-most node at each
// level.
const NoUpperBound = ^uint64(0)

// AliveOffset is the byte offset of the allocation ("free") bit within a
// node, exported so deallocation can clear it with a 1-byte RDMA_WRITE
// (§4.2.4).
const AliveOffset = offAlive

// Format captures the node geometry of one tree.
type Format struct {
	Mode Mode
	// KeySize is the wire size of a key in bytes (>= 8; the logical key is
	// always a uint64, larger sizes are padding — see DESIGN.md §5). The
	// paper's default is 8.
	KeySize int
	// ValueSize is the wire size of a value (8 in the paper).
	ValueSize int
	// NodeSize is the full node size in bytes (1 KB in the paper, §5.1.3).
	NodeSize int

	// Derived geometry.
	LeafCap     int // max entries per leaf
	IntCap      int // max separator keys per internal node
	LeafEntSize int // bytes per leaf entry (incl. FEV/REV in TwoLevel mode)
	IntEntSize  int // bytes per internal entry (key + child pointer)
}

// NewFormat derives a format from mode, key size and node size.
func NewFormat(mode Mode, keySize, nodeSize int) Format {
	f := Format{Mode: mode, KeySize: keySize, ValueSize: 8, NodeSize: nodeSize}
	if keySize < 8 {
		panic(fmt.Sprintf("layout: key size %d below 8", keySize))
	}
	f.IntEntSize = keySize + 8
	switch mode {
	case TwoLevel:
		// Leaf: header | entries | RNV. Entry: FEV | key | value | REV.
		f.LeafEntSize = 1 + keySize + f.ValueSize + 1
		f.LeafCap = (nodeSize - headerEnd - 1) / f.LeafEntSize
		// Internal: header | count(2) | leftmost(8) | entries | RNV.
		f.IntCap = (nodeSize - headerEnd - 2 - 8 - 1) / f.IntEntSize
	case Checksum:
		// Leaf: header | crc(8) | count(2) | entries.
		f.LeafEntSize = keySize + f.ValueSize
		f.LeafCap = (nodeSize - offCountCksum - 2) / f.LeafEntSize
		// Internal: header | crc(8) | count(2) | leftmost(8) | entries.
		f.IntCap = (nodeSize - offCountCksum - 2 - 8) / f.IntEntSize
	default:
		panic(fmt.Sprintf("layout: unknown mode %d", mode))
	}
	if f.LeafCap < 2 || f.IntCap < 2 {
		panic(fmt.Sprintf("layout: node size %d too small for key size %d", nodeSize, keySize))
	}
	return f
}

// NewFormatFixedCap derives a format with exactly `entries` slots per leaf by
// growing the node size, as the key-size sensitivity experiment does
// (§5.6.1 fixes 32 entries per node while varying key size).
func NewFormatFixedCap(mode Mode, keySize, entries int) Format {
	var need int
	switch mode {
	case TwoLevel:
		need = headerEnd + 1 + entries*(1+keySize+8+1)
	case Checksum:
		need = offCountCksum + 2 + entries*(keySize+8)
	}
	// Round up to 64 B so nodes stay line-aligned.
	need = (need + 63) &^ 63
	f := NewFormat(mode, keySize, need)
	// Clamp caps to exactly the requested entry count for apples-to-apples
	// comparisons across modes.
	if f.LeafCap > entries {
		f.LeafCap = entries
	}
	return f
}

// DefaultFormat is the paper's default geometry: 8-byte keys and values,
// 1 KB nodes.
func DefaultFormat(mode Mode) Format { return NewFormat(mode, 8, 1024) }

// leafEntryOff returns the buffer offset of leaf entry slot i.
func (f Format) leafEntryOff(i int) int {
	switch f.Mode {
	case TwoLevel:
		return headerEnd + i*f.LeafEntSize
	default:
		return offCountCksum + 2 + i*f.LeafEntSize
	}
}

// intEntryOff returns the buffer offset of internal entry slot i.
func (f Format) intEntryOff(i int) int {
	switch f.Mode {
	case TwoLevel:
		return offCountTL + 2 + 8 + i*f.IntEntSize
	default:
		return offCountCksum + 2 + 8 + i*f.IntEntSize
	}
}
