package sherman

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sherman/internal/core"
	"sherman/internal/sim"
	"sherman/internal/stats"
)

// Typed errors of the unified Op/Result API. The legacy methods keep their
// original panic contracts; Submit and Exec report these instead.
var (
	// ErrReservedKey rejects writes to key 0, the tree's deleted-entry
	// sentinel (§4.4).
	ErrReservedKey = errors.New("sherman: key 0 is reserved")
	// ErrBadComputeServer rejects a session on a compute server outside
	// [0, ComputeServers).
	ErrBadComputeServer = errors.New("sherman: compute server out of range")
	// ErrSessionDead reports that the session's compute server crashed
	// (Cluster.KillComputeServer, or a fault-injection schedule). The
	// session is permanently unusable — restarting the server does not
	// revive it; open a new session. An operation that died mid-flight was
	// either fully applied or had no effect, never anything in between.
	ErrSessionDead = errors.New("sherman: session's compute server crashed")
)

// OpKind names one operation class of the unified client model.
type OpKind int

// Operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
	OpScan
)

// Op is one client operation. Every request — point get, put (insert or
// in-place update), delete, range scan — is the same value type, so mixed
// streams flow through one pipeline (Submit) and one batch planner (Exec).
type Op struct {
	Kind OpKind
	Key  uint64
	// Value is the OpPut payload.
	Value uint64
	// Span bounds an OpScan result.
	Span int
}

// PutOp stores value under key (insert or in-place update).
func PutOp(key, value uint64) Op { return Op{Kind: OpPut, Key: key, Value: value} }

// GetOp reads the value under key.
func GetOp(key uint64) Op { return Op{Kind: OpGet, Key: key} }

// DeleteOp removes key.
func DeleteOp(key uint64) Op { return Op{Kind: OpDelete, Key: key} }

// ScanOp reads up to span pairs with key >= from in ascending order.
func ScanOp(from uint64, span int) Op { return Op{Kind: OpScan, Key: from, Span: span} }

// Result is the outcome of one Op. Gets fill Value/Found, deletes fill
// Found, scans fill KVs; an invalid operation fills only Err and leaves the
// tree untouched.
type Result struct {
	Value uint64
	Found bool
	KVs   []KV
	Err   error
}

// Future is the pending result of one submitted operation.
type Future struct {
	s    *Session
	p    core.Pending
	pend bool
	res  Result
	done int64
}

// Wait blocks until the operation has completed and returns its result. On
// the simulator the session clock advances to the operation's virtual
// completion time; on a real transport at PipelineDepth > 1 the operation is
// genuinely in flight and Wait blocks for it. Waiting on an already-passed
// future is free; Wait may be called any number of times.
func (f *Future) Wait() Result {
	if f.pend {
		f.pend = false
		p := f.p
		var cres core.OpResult
		var end int64
		if err := f.s.run(func() { cres, end = p.Wait() }); err != nil {
			f.res, f.done = Result{Err: err}, f.s.h.C.Now()
		} else {
			f.res, f.done = resultFrom(cres), end
		}
		return f.res
	}
	if f.s != nil {
		f.s.a.WaitUntil(f.done)
	}
	return f.res
}

// CompleteAtV returns the operation's completion time on the session's
// virtual clock (see Session.VirtualNow). On a real transport at
// PipelineDepth > 1 the completion time is unknown until the operation
// finishes: CompleteAtV returns 0 before the first Wait and the wall-clock
// completion (transport nanos) after.
func (f *Future) CompleteAtV() int64 { return f.done }

// Session is one client thread's interface to a tree, bound to one compute
// server. Sessions are not safe for concurrent use — they model exactly one
// client thread of the paper — so open one per goroutine. Any number of
// sessions may operate on the same tree concurrently.
//
// A session issues operations two ways. The synchronous methods (Put, Get,
// Delete, Scan and the *Batch wrappers) complete each call before
// returning. The unified Op/Result API (Submit, Exec, Flush) pipelines: a
// session opened with PipelineDepth(n) keeps up to n operations
// outstanding, overlapping their round trips the way the paper's clients
// run multiple coroutines per thread, so per-thread throughput climbs
// toward the fabric bound instead of being RTT-bound.
type Session struct {
	h    *core.Handle
	a    *core.Async
	cs   int
	dead bool

	// Exec's translation scratch, recycled across batches so steady-state
	// batching allocates only the caller-owned results slice.
	cops []core.Op
	idx  []int
	cres []core.OpResult
}

// run executes fn, converting the crash of this session's compute server
// into the typed ErrSessionDead: every entry point funnels through it, so a
// dead session's calls return (or panic with) the error instead of touching
// the fabric — and never hang.
func (s *Session) run(fn func()) (err error) {
	if s.dead || !s.h.C.Alive() {
		s.dead = true
		return ErrSessionDead
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := sim.IsCrash(r); ok {
				s.dead = true
				err = ErrSessionDead
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

// Dead reports whether the session's compute server has crashed. Dead
// sessions stay dead across a RestartComputeServer; open a new session.
func (s *Session) Dead() bool {
	if !s.dead && !s.h.C.Alive() {
		s.dead = true
	}
	return s.dead
}

var sessionSeq atomic.Int64

// SessionOption configures a session at open time.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	depth int
}

// PipelineDepth bounds the session's outstanding operations (clamped to
// >= 1). Depth 1 — the default — is the synchronous client; higher depths
// hide round-trip latency under Submit and Exec while remaining observably
// equivalent to sequential execution: the executor preserves per-key
// ordering, and scans order against all outstanding writes.
func PipelineDepth(n int) SessionOption {
	return func(c *sessionConfig) { c.depth = n }
}

// SessionAt opens a session on compute server cs (0 <= cs <
// ComputeServers), reporting ErrBadComputeServer for an out-of-range cs.
func (t *Tree) SessionAt(cs int, opts ...SessionOption) (*Session, error) {
	if cs < 0 || cs >= t.c.ComputeServers() {
		return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, cs, t.c.ComputeServers())
	}
	cfg := sessionConfig{depth: 1}
	for _, o := range opts {
		o(&cfg)
	}
	h := t.tr.NewHandle(cs, int(sessionSeq.Add(1)))
	return &Session{h: h, a: h.NewAsync(cfg.depth), cs: cs}, nil
}

// Session opens a synchronous session on compute server cs, panicking when
// cs is out of range (the original contract; new code should prefer
// SessionAt).
func (t *Tree) Session(cs int) *Session {
	s, err := t.SessionAt(cs)
	if err != nil {
		panic(fmt.Sprintf("sherman: compute server %d out of range [0,%d)", cs, t.c.ComputeServers()))
	}
	return s
}

// ComputeServer returns the compute server this session runs on.
func (s *Session) ComputeServer() int { return s.cs }

// PipelineDepth returns the session's outstanding-operation bound.
func (s *Session) PipelineDepth() int { return s.a.Depth() }

// toCore validates op and translates it to the core representation.
func (op Op) toCore() (core.Op, error) {
	switch op.Kind {
	case OpGet:
		return core.Op{Kind: stats.OpLookup, Key: op.Key}, nil
	case OpPut:
		if op.Key == 0 {
			return core.Op{}, ErrReservedKey
		}
		return core.Op{Kind: stats.OpInsert, Key: op.Key, Value: op.Value}, nil
	case OpDelete:
		if op.Key == 0 {
			return core.Op{}, ErrReservedKey
		}
		return core.Op{Kind: stats.OpDelete, Key: op.Key}, nil
	case OpScan:
		return core.Op{Kind: stats.OpRange, Key: op.Key, Span: op.Span}, nil
	default:
		return core.Op{}, fmt.Errorf("sherman: unknown op kind %d", op.Kind)
	}
}

// resultFrom converts one core result.
func resultFrom(r core.OpResult) Result {
	return Result{Value: r.Value, Found: r.Found, KVs: r.KVs}
}

// Submit enqueues op on the session's pipeline and returns its future. Up
// to PipelineDepth operations run with overlapping round trips; Submit
// itself advances the session only by the issue cost (and, when the
// pipeline is full, to the next completion). Invalid operations — a put or
// delete of reserved key 0 — resolve immediately to a Result carrying a
// typed error (ErrReservedKey) without touching the tree, as does any
// operation on a dead session (ErrSessionDead). An operation in flight when
// the compute server crashes resolves to ErrSessionDead; it was either
// fully applied or had no effect.
func (s *Session) Submit(op Op) *Future {
	cop, err := op.toCore()
	if err != nil {
		return &Future{res: Result{Err: err}, done: s.h.C.Now()}
	}
	if op.Kind == OpScan && op.Span <= 0 {
		return &Future{res: Result{}, done: s.h.C.Now()}
	}
	var p core.Pending
	if err := s.run(func() { p = s.a.SubmitOp(cop) }); err != nil {
		return &Future{res: Result{Err: err}, done: s.h.C.Now()}
	}
	if p.Deferred() {
		// Real transport, depth > 1: the op is physically in flight on a
		// worker goroutine; its result materializes at Wait.
		return &Future{s: s, p: p, pend: true}
	}
	res, done := p.Result()
	return &Future{s: s, res: resultFrom(res), done: done}
}

// Exec applies a mixed batch of operations, observably equivalent to
// executing them sequentially in submission order, and returns one result
// per operation. Point operations sharing a leaf share one traversal, one
// lock acquisition (when any writes) and one combined doorbell, and — at
// PipelineDepth > 1 — independent leaf groups overlap their round trips.
// Exec orders after all outstanding Submits and returns fully drained.
// Invalid operations carry a typed error in their Result slot; the rest of
// the batch still executes.
func (s *Session) Exec(ops []Op) []Result {
	results := make([]Result, len(ops)) // caller-owned, never recycled
	cops := s.cops[:0]
	idx := s.idx[:0]
	for i, op := range ops {
		cop, err := op.toCore()
		if err != nil {
			results[i].Err = err
			continue
		}
		if op.Kind == OpScan && op.Span <= 0 {
			continue
		}
		cops = append(cops, cop)
		idx = append(idx, i)
	}
	cres := s.cres
	if cap(cres) < len(cops) {
		cres = make([]core.OpResult, len(cops))
	} else {
		cres = cres[:len(cops)]
	}
	err := s.run(func() { s.a.ExecInto(cops, cres) })
	if err != nil {
		// The server crashed mid-batch: the outcomes of the ops that went
		// to the fabric are unknown (each applied fully or not at all, but
		// the results died with the session). Locally-rejected ops keep
		// their known errors — they were never sent.
		for _, i := range idx {
			results[i] = Result{Err: err}
		}
	} else {
		for j, r := range cres {
			results[idx[j]] = resultFrom(r)
		}
	}
	s.cops, s.idx, s.cres = cops[:0], idx[:0], cres[:0]
	return results
}

// Flush drains the pipeline: it returns once every submitted operation has
// completed (the session clock advances to the last completion). A depth-1
// session's Flush is a no-op. On a session whose compute server crashed,
// Flush returns ErrSessionDead immediately instead of hanging — there is
// nothing left to drain; in-flight operations died with the server.
func (s *Session) Flush() error {
	return s.run(func() { s.a.Flush() })
}

// --- error-returning synchronous methods ---------------------------------

// PutE stores value under key (insert or in-place update), reporting
// ErrReservedKey for key 0 and ErrSessionDead on a crashed session. It is
// the error-returning replacement for Put.
func (s *Session) PutE(key, value uint64) error {
	cop, err := PutOp(key, value).toCore()
	if err != nil {
		return err
	}
	_, err = s.submitWait(cop)
	return err
}

// GetE returns the value stored under key, reporting ErrSessionDead on a
// crashed session. It is the error-returning replacement for Get.
func (s *Session) GetE(key uint64) (uint64, bool, error) {
	r, err := s.submitWait(core.Op{Kind: stats.OpLookup, Key: key})
	if err != nil {
		return 0, false, err
	}
	return r.Value, r.Found, nil
}

// DeleteE removes key, reporting whether it was present, ErrReservedKey for
// key 0, and ErrSessionDead on a crashed session. It is the error-returning
// replacement for Delete.
func (s *Session) DeleteE(key uint64) (bool, error) {
	cop, err := DeleteOp(key).toCore()
	if err != nil {
		return false, err
	}
	r, err := s.submitWait(cop)
	return r.Found, err
}

// ScanE returns up to span pairs with key >= from in ascending key order,
// reporting ErrSessionDead on a crashed session. Like Scan it is not a
// snapshot. It is the error-returning replacement for Scan.
func (s *Session) ScanE(from uint64, span int) ([]KV, error) {
	if span <= 0 {
		return nil, nil
	}
	r, err := s.submitWait(core.Op{Kind: stats.OpRange, Key: from, Span: span})
	if err != nil {
		return nil, err
	}
	return r.KVs, nil
}

// --- legacy synchronous methods: thin wrappers over the unified API ------

// legacyErr enforces the legacy methods' panic contracts: reserved keys keep
// the original message; a dead session panics with ErrSessionDead (the
// legacy signatures have no error slot to report it through — use Submit or
// Exec for the typed-error contract).
func legacyErr(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ErrSessionDead) {
		panic(ErrSessionDead)
	}
	panic("core: key 0 is reserved")
}

// submitWait pushes one validated core op through the pipeline and waits for
// its completion — the legacy synchronous path, which never materializes a
// Future (a synchronous caller waits immediately, so the future's
// wait-later-and-repeatedly contract buys nothing but an allocation).
func (s *Session) submitWait(cop core.Op) (core.OpResult, error) {
	var res core.OpResult
	err := s.run(func() {
		p := s.a.SubmitOp(cop)
		res, _ = p.Wait()
	})
	return res, err
}

// Put stores value under key, inserting or updating in place. Key 0 is
// reserved and panics (it is the tree's deleted-entry sentinel, §4.4), as
// does a dead session (with ErrSessionDead).
//
// Deprecated: prefer PutE (or Submit/Exec), which report ErrReservedKey and
// ErrSessionDead as errors instead of panicking. Put remains for
// compatibility with the original synchronous contract.
func (s *Session) Put(key, value uint64) {
	cop, err := PutOp(key, value).toCore()
	if err == nil {
		_, err = s.submitWait(cop)
	}
	legacyErr(err)
}

// Get returns the value stored under key. A dead session panics with
// ErrSessionDead.
//
// Deprecated: prefer GetE (or Submit/Exec), which report ErrSessionDead as
// an error instead of panicking.
func (s *Session) Get(key uint64) (uint64, bool) {
	r, err := s.submitWait(core.Op{Kind: stats.OpLookup, Key: key})
	legacyErr(err)
	return r.Value, r.Found
}

// Delete removes key, reporting whether it was present. Key 0 is reserved
// and panics, as does a dead session (with ErrSessionDead).
//
// Deprecated: prefer DeleteE (or Submit/Exec), which report ErrReservedKey
// and ErrSessionDead as errors instead of panicking.
func (s *Session) Delete(key uint64) bool {
	cop, err := DeleteOp(key).toCore()
	var r core.OpResult
	if err == nil {
		r, err = s.submitWait(cop)
	}
	legacyErr(err)
	return r.Found
}

// Scan returns up to span pairs with key >= from in ascending key order.
// Like the paper's range query (§4.4), a scan is not atomic with concurrent
// writes: each leaf is read consistently, but the scan as a whole is not a
// snapshot. A dead session panics with ErrSessionDead.
//
// Deprecated: prefer ScanE (or Submit/Exec), which report ErrSessionDead as
// an error instead of panicking.
func (s *Session) Scan(from uint64, span int) []KV {
	if span <= 0 {
		return nil
	}
	r, err := s.submitWait(core.Op{Kind: stats.OpRange, Key: from, Span: span})
	legacyErr(err)
	return r.KVs
}

// PutBatch stores every pair in kvs, observably equivalent to calling Put
// for each pair in order, but executed through the batch planner: keys are
// sorted and pairs landing in the same leaf share one traversal, one leaf
// lock and one combined write-back+release doorbell, cutting round trips
// and lock traffic on bulk writes. Duplicate keys apply in submission order
// (the last value wins). Key 0 is reserved and panics.
func (s *Session) PutBatch(kvs []KV) {
	ops := make([]Op, len(kvs))
	for i, kv := range kvs {
		if kv.Key == 0 {
			panic("core: key 0 is reserved")
		}
		ops[i] = PutOp(kv.Key, kv.Value)
	}
	for _, r := range s.Exec(ops) {
		legacyErr(r.Err)
	}
}

// GetBatch returns, for each key, the stored value and whether it was
// present — observably equivalent to calling Get per key, but reading each
// target leaf once for all the keys it covers.
func (s *Session) GetBatch(keys []uint64) (values []uint64, found []bool) {
	ops := make([]Op, len(keys))
	for i, k := range keys {
		ops[i] = GetOp(k)
	}
	res := s.Exec(ops)
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	for i, r := range res {
		legacyErr(r.Err)
		values[i], found[i] = r.Value, r.Found
	}
	return values, found
}

// DeleteBatch removes every key, reporting per key whether it was present —
// observably equivalent to calling Delete per key. Deletes of absent keys
// cost no write-back. Key 0 is reserved and panics.
func (s *Session) DeleteBatch(keys []uint64) (found []bool) {
	ops := make([]Op, len(keys))
	for i, k := range keys {
		if k == 0 {
			panic("core: key 0 is reserved")
		}
		ops[i] = DeleteOp(k)
	}
	res := s.Exec(ops)
	found = make([]bool, len(keys))
	for i, r := range res {
		legacyErr(r.Err)
		found[i] = r.Found
	}
	return found
}

// VirtualNow returns the session's virtual clock in nanoseconds — the time
// at which its most recent operation was issued (and, after Wait or Flush,
// completed) on the simulated fabric. Dividing operation counts by
// makespans of these clocks gives the throughput numbers the benchmarks
// report.
func (s *Session) VirtualNow() int64 { return s.h.C.Now() }

// Stats returns the session's accumulated measurements. Call Flush first on
// a pipelined session to fold outstanding operations in. On a real transport
// at PipelineDepth > 1, operations execute on pooled worker handles: their
// op counts and latencies are folded into the session's recorder at harvest,
// and the workers' own verb and cache counters are summed in here (so Flush
// first — a worker mid-operation is counted mid-flight).
func (s *Session) Stats() SessionStats {
	r := s.h.Rec
	m := s.h.Metrics()
	st := SessionStats{
		Lookups:      r.Ops[stats.OpLookup],
		Inserts:      r.Ops[stats.OpInsert],
		Deletes:      r.Ops[stats.OpDelete],
		Scans:        r.Ops[stats.OpRange],
		RoundTrips:   m.RoundTrips,
		WriteBytes:   m.WriteBytes,
		CASFailures:  m.CASFailures,
		CacheHits:    r.CacheHits,
		CacheMisses:  r.CacheMisses,
		Handovers:    r.Handovers,
		Reclaims:     r.Reclaims,
		P50LatencyNS: r.AllLatency.Percentile(50),
		P99LatencyNS: r.AllLatency.Percentile(99),

		CacheEvictions:     s.h.Cache().Evictions(),
		CacheInvalidations: r.CacheInvalidations,
		SpeculativeReads:   r.SpecReads,
		SpeculativeFails:   r.SpecFails,

		Batches:         r.Batches,
		BatchedOps:      r.BatchedOps,
		BatchLeafGroups: r.BatchLeafGroups,
		DoorbellBatches: m.DoorbellBatches,
		DoorbellOps:     m.DoorbellOps,

		PipelinedOps:       r.PipelinedOps,
		MeanOutstanding:    r.PipelineDepths.Mean(),
		LatencyHidingRatio: r.HidingRatio(),

		ReplicaWrites:   r.ReplicaWrites,
		ReplicaLagMaxNS: r.ReplicaLagMaxNS,
	}
	s.a.ForEachWorker(func(w *core.Handle) {
		wm := w.Metrics()
		st.RoundTrips += wm.RoundTrips
		st.WriteBytes += wm.WriteBytes
		st.CASFailures += wm.CASFailures
		st.DoorbellBatches += wm.DoorbellBatches
		st.DoorbellOps += wm.DoorbellOps
		wr := w.Rec
		st.CacheHits += wr.CacheHits
		st.CacheMisses += wr.CacheMisses
		st.Handovers += wr.Handovers
		st.Reclaims += wr.Reclaims
		st.CacheInvalidations += wr.CacheInvalidations
		st.SpeculativeReads += wr.SpecReads
		st.SpeculativeFails += wr.SpecFails
		st.ReplicaWrites += wr.ReplicaWrites
		if wr.ReplicaLagMaxNS > st.ReplicaLagMaxNS {
			st.ReplicaLagMaxNS = wr.ReplicaLagMaxNS
		}
	})
	return st
}

// SessionStats summarizes one session's activity. Latencies are in virtual
// nanoseconds over all completed operations.
type SessionStats struct {
	Lookups, Inserts, Deletes, Scans int64

	// RoundTrips counts network round trips; a doorbell-batched post of
	// dependent writes counts once (§4.5).
	RoundTrips int64
	// WriteBytes totals RDMA_WRITE payload bytes — the write-amplification
	// metric of Figure 14(c).
	WriteBytes int64
	// CASFailures counts failed remote lock CAS attempts (§3.2.2).
	CASFailures int64

	CacheHits, CacheMisses int64
	// CacheEvictions counts budget-pressure evictions of the compute
	// server's shared index cache (all sessions of the CS contribute).
	CacheEvictions int64
	// CacheInvalidations counts cache entries this session dropped for
	// staleness: failed speculative validations (the poisoned path suffix),
	// dead nodes observed mid-descent, and reclaimed-lock repairs.
	CacheInvalidations int64
	// SpeculativeReads counts leaf reads issued directly from a cached
	// level-1 parent (the leaf-direct jump); SpeculativeFails counts those
	// whose validation failed and fell back to a top-down descent.
	SpeculativeReads, SpeculativeFails int64
	// Handovers counts lock acquisitions satisfied by intra-CS handover.
	Handovers int64
	// Reclaims counts lock acquisitions that freed an orphaned lock left by
	// a crashed compute server (expired-lease reclamation).
	Reclaims int64

	P50LatencyNS, P99LatencyNS int64

	// Batches counts Exec (and *Batch wrapper) invocations; BatchedOps the
	// point operations they carried (also included in the per-kind counts
	// above). BatchLeafGroups counts the leaf groups those batches formed —
	// BatchedOps/BatchLeafGroups is the traversal-and-lock amortization the
	// planner achieved.
	Batches, BatchedOps, BatchLeafGroups int64
	// DoorbellBatches counts multi-command doorbell posts issued by this
	// session's verbs; DoorbellOps the commands they carried (§4.5).
	DoorbellBatches, DoorbellOps int64

	// PipelinedOps counts operations issued at PipelineDepth > 1;
	// MeanOutstanding is the mean outstanding depth observed at issue.
	PipelinedOps    int64
	MeanOutstanding float64
	// LatencyHidingRatio is summed operation latencies over the union of
	// their execution intervals: 1.0 means fully serialized, depth-D
	// pipelines approach D. 0 means nothing was pipelined.
	LatencyHidingRatio float64

	// ReplicaWrites counts mirror WRITEs this session posted to replica
	// chunks (zero with replication off); ReplicaWrites over Inserts+Deletes
	// approximates the replication write amplification. ReplicaLagMaxNS is
	// the worst observed gap between a primary commit and the completion of
	// its mirror doorbell — the bounded replica lag (DESIGN.md §12).
	ReplicaWrites   int64
	ReplicaLagMaxNS int64
}

// Cursor iterates the tree in ascending key order, refilling leaf-at-a-time
// through Scan so callers don't hand-roll resume-from-last-key loops. Like
// Scan, a cursor is not a snapshot: each refill observes concurrent writes.
type Cursor struct {
	s    *Session
	next uint64
	span int
	buf  []KV
	i    int
	done bool
	err  error
}

// Cursor opens a cursor positioned at the first key >= from. The refill
// granularity is one leaf's worth of entries.
func (s *Session) Cursor(from uint64) *Cursor {
	span := s.h.Tree().Config().Format.LeafCap
	if span < 1 {
		span = 16
	}
	return &Cursor{s: s, next: from, span: span}
}

// Next returns the next pair in ascending key order, or ok=false when the
// range is exhausted — or when a refill failed, which Err reports. Next
// never panics: a crashed compute server ends the iteration cleanly with
// Err returning ErrSessionDead.
func (c *Cursor) Next() (kv KV, ok bool) {
	for {
		if c.i < len(c.buf) {
			kv = c.buf[c.i]
			c.i++
			return kv, true
		}
		if c.done {
			return KV{}, false
		}
		buf, err := c.s.ScanE(c.next, c.span)
		if err != nil {
			c.err = err
			c.done = true
			return KV{}, false
		}
		c.buf = buf
		c.i = 0
		if len(c.buf) < c.span {
			c.done = true // the tree ran out before the span filled
		}
		if len(c.buf) == 0 {
			return KV{}, false
		}
		last := c.buf[len(c.buf)-1].Key
		if last == ^uint64(0) {
			c.done = true
		} else {
			c.next = last + 1
		}
	}
}

// Err returns the error that terminated the iteration early, or nil after a
// clean exhaustion. Check it once Next reports ok=false.
func (c *Cursor) Err() error { return c.err }
