package rdma

import "sherman/internal/transport"

// Client implements the pluggable verb surface — and, being a simulator, the
// virtual-time capability interface on top.
var (
	_ transport.Transport    = (*Client)(nil)
	_ transport.VirtualTimer = (*Client)(nil)
)

// CSID identifies the compute server this client thread runs on.
func (c *Client) CSID() uint16 { return c.CS.ID }

// AdvanceTo moves the thread's virtual clock forward to t if t is ahead.
func (c *Client) AdvanceTo(t int64) { c.Clk.AdvanceTo(t) }

// SetClock forces the thread's virtual clock to v (backwards allowed);
// benchmarks and recovery use it to align a fresh thread with cluster time.
func (c *Client) SetClock(v int64) { c.Clk.Set(v) }

// NumMS is the number of memory servers currently in the fabric.
func (c *Client) NumMS() int { return c.F.NumServers() }

// MSAlive reports whether memory server ms is reachable.
func (c *Client) MSAlive(ms int) bool { return c.F.Faults.MSAlive(ms) }

// MSUsable reports whether ms should receive new allocations: alive and not
// draining for scale-in.
func (c *Client) MSUsable(ms int) bool {
	s := c.F.Servers()[ms]
	return !s.Draining() && !s.Dead()
}

// Metrics exposes the per-thread verb counters.
func (c *Client) Metrics() *Metrics { return &c.M }

// Timing exposes the simulation's cost constants.
func (c *Client) Timing() transport.Timing {
	p := c.F.P
	return transport.Timing{
		RTTNS:             p.RTTNS,
		LocalStepNS:       p.LocalStepNS,
		LocalSpinNS:       p.LocalSpinNS,
		PipelineIssueNS:   p.PipelineIssueNS,
		WraparoundGuardNS: p.WraparoundGuardNS,
		LeaseNS:           p.LeaseNS,
	}
}

// GrowChunk asks memory server ms's allocation thread for one fresh chunk
// via the two-sided RPC path and returns its base host offset.
func (c *Client) GrowChunk(ms uint16) uint64 {
	servers := c.F.Servers()
	var base uint64
	c.Call(ms, func() { base = servers[ms].Grow() })
	return base
}

// The Fabric doubles as the raw (setup-time, untimed) allocation view the
// bulk allocator runs over.
var _ transport.Grower = (*Fabric)(nil)

// NumMS is the number of memory servers currently in the fabric (the
// placement-view spelling of NumServers).
func (f *Fabric) NumMS() int { return f.NumServers() }

// MSAlive reports whether memory server ms is reachable.
func (f *Fabric) MSAlive(ms int) bool { return f.Faults.MSAlive(ms) }

// MSUsable reports whether ms should receive new allocations.
func (f *Fabric) MSUsable(ms int) bool {
	s := f.Servers()[ms]
	return !s.Draining() && !s.Dead()
}

// GrowChunkRaw grows one chunk on ms with no virtual-time accounting, for
// setup-time bulk loading.
func (f *Fabric) GrowChunkRaw(ms uint16) uint64 { return f.Servers()[ms].Grow() }
