package tcp

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sherman/internal/transport"
)

// OnChipBytes is the NIC device-memory capacity each shermand exposes,
// matching the simulator's ConnectX-5 default (256 KB). Client and server
// agree on it via the Ping handshake.
const OnChipBytes = 256 << 10

const chunkSize = transport.DefaultChunkSize

// numStripes is the lock-striping width of each address space half: host
// chunks stripe by chunk index, the on-chip region by 64-byte line, so
// concurrent tagged requests to different chunks (or different lock words)
// never serialize on one mutex. 64 stripes comfortably exceed any plausible
// per-server worker concurrency.
const numStripes = 64

// connWorkers is the per-connection handler pool: how many tagged requests
// of one client connection the server works on concurrently. It matches the
// client's default window order of magnitude; excess requests queue in the
// read loop (backpressure via the request-context free list).
const connWorkers = 16

// serverStart anchors this server process's monotonic clock. Ping responses
// carry nanoseconds since this instant so every client process can anchor
// lease arithmetic to the same origin (the server's), not its own — lease
// stamps written by one client process must be comparable in another.
var serverStart = time.Now()

// storeSnap is the immutable chunk directory: the chunk slices plus their
// inbound-op counters, republished wholesale on every Grow so readers
// navigate lock-free.
type storeSnap struct {
	chunks [][]byte
	ops    []*atomic.Int64
}

// store is one memory server's memory: host chunks handed out by Grow plus
// the fixed on-chip region. Every access locks only its stripe — host
// stripes by chunk, on-chip stripes by 64-byte line — so each verb (and
// each op of a batch, applied in posted order) is individually atomic,
// matching RDMA's per-verb atomicity (DESIGN.md §13).
type store struct {
	growMu sync.Mutex
	snap   atomic.Pointer[storeSnap]
	onChip []byte

	// locks[0:numStripes] guard host chunks, locks[numStripes:] on-chip lines.
	locks [2 * numStripes]sync.Mutex

	// totalOps counts every inbound data verb (reads, writes, atomics) plus
	// allocation RPCs; chipOps the on-chip subset. Per-chunk counts live in
	// the snapshot. Together they answer the Stats opcode.
	totalOps atomic.Int64
	chipOps  atomic.Int64
}

func newStore() *store {
	s := &store{onChip: make([]byte, OnChipBytes)}
	s.snap.Store(&storeSnap{})
	return s
}

// region is one located access target: the bytes, the stripe lock guarding
// them, and the per-chunk counter to bump (nil for on-chip targets).
type region struct {
	b   []byte
	mu  *sync.Mutex
	ops *atomic.Int64
}

// locate resolves [off, off+n) in the addressed memory space. Tree nodes and
// lock words never straddle a chunk boundary (the allocator carves aligned
// blocks out of aligned chunks), so a region crossing one is a protocol
// error, not a case to support.
func (s *store) locate(a transport.Addr, n int) (region, error) {
	off := a.Off()
	if a.OnChip() {
		if off+uint64(n) > uint64(len(s.onChip)) {
			return region{}, fmt.Errorf("on-chip access [%#x,+%d) exceeds %d B", off, n, len(s.onChip))
		}
		return region{
			b:  s.onChip[off : off+uint64(n)],
			mu: &s.locks[numStripes+int((off>>6)%numStripes)],
		}, nil
	}
	snap := s.snap.Load()
	ci := off / chunkSize
	if ci >= uint64(len(snap.chunks)) {
		return region{}, fmt.Errorf("access [%#x,+%d) beyond grown memory (%d chunks)", off, n, len(snap.chunks))
	}
	co := off % chunkSize
	if co+uint64(n) > chunkSize {
		return region{}, fmt.Errorf("access [%#x,+%d) straddles a chunk boundary", off, n)
	}
	return region{
		b:   snap.chunks[ci][co : co+uint64(n)],
		mu:  &s.locks[ci%numStripes],
		ops: snap.ops[ci],
	}, nil
}

// count books one inbound op against the server totals and r's chunk.
func (s *store) count(r region) {
	s.totalOps.Add(1)
	if r.ops != nil {
		r.ops.Add(1)
	} else {
		s.chipOps.Add(1)
	}
}

// grow appends one chunk, republishing the snapshot. Growth serializes on
// growMu; in-flight accesses keep reading the old snapshot (they cannot
// target the new chunk, whose base is unpublished until the response).
func (s *store) grow() uint64 {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	old := s.snap.Load()
	base := uint64(len(old.chunks)) * chunkSize
	next := &storeSnap{
		chunks: append(append([][]byte(nil), old.chunks...), make([]byte, chunkSize)),
		ops:    append(append([]*atomic.Int64(nil), old.ops...), new(atomic.Int64)),
	}
	s.snap.Store(next)
	return base
}

// Server is one memory-server process's serving half: the store plus an
// accept loop. cmd/shermand wraps it; tests can also run it in-process.
type Server struct {
	st *store
	ln net.Listener

	accepted atomic.Int64

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	shutdown chan struct{}
	once     sync.Once
}

// NewServer creates a server listening on addr ("host:0" picks a free
// port). Call Serve to start accepting and Addr for the bound address.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		st:       newStore(),
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Accepted returns the number of connections the server has accepted — the
// pre-dial regression probe: a cluster that pre-dials at bring-up accepts
// nothing new when the first verb flies.
func (s *Server) Accepted() int64 { return s.accepted.Load() }

// Done is closed when a Shutdown frame arrives or Close is called.
func (s *Server) Done() <-chan struct{} { return s.shutdown }

// Close stops the server: the listener closes, open connections drop.
func (s *Server) Close() {
	s.once.Do(func() { close(s.shutdown) })
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Serve accepts connections until Close (or a Shutdown frame). It returns
// nil on orderly shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return nil
			default:
				return err
			}
		}
		s.accepted.Add(1)
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// reqCtx is one pooled request context: the read loop fills tag/op/in, a
// worker appends the response payload into resp. Both buffers are reused
// across requests, so the steady request path allocates nothing (the
// in-process alloc probe measures this server too).
type reqCtx struct {
	tag  uint32
	op   byte
	in   []byte
	resp []byte
}

// connWriter coalesces one connection's response writes: workers append
// complete frames into a shared buffer, and a flusher goroutine swaps the
// buffer out and writes it with a single syscall. Under a deep pipeline
// many responses ride one flush — the server-side mirror of the client
// mux's request coalescing; when the connection is idle the flusher runs
// immediately, so a lone response flushes with no added delay. Responses to
// different tags may legally leave in any order (the client demuxes by
// tag), so the flusher and flushNow never need to agree on frame order —
// only on whole-frame writes.
type connWriter struct {
	conn net.Conn
	mu   sync.Mutex // guards buf
	buf  []byte
	wmu  sync.Mutex // serializes conn.Write between run and flushNow
	fout []byte     // flushNow's recycled swap buffer; guarded by wmu
	wake chan struct{}
	done chan struct{}
}

func newConnWriter(conn net.Conn) *connWriter {
	w := &connWriter{conn: conn, wake: make(chan struct{}, 1), done: make(chan struct{})}
	go w.run()
	return w
}

// post appends one response frame for the flusher to pick up.
func (w *connWriter) post(tag uint32, status byte, resp []byte) {
	w.mu.Lock()
	w.buf = appendFrame(w.buf, tag, status, resp)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// flushNow synchronously drains the buffer — the demux loop's batch
// boundary, and the shutdown path (the ack must be on the wire before the
// listener closes). The drained buffer swaps against a recycled spare so
// the per-burst flush allocates nothing in steady state.
func (w *connWriter) flushNow() {
	w.wmu.Lock()
	w.mu.Lock()
	out := w.buf
	w.buf = w.fout[:0]
	w.mu.Unlock()
	var err error
	if len(out) > 0 {
		_, err = w.conn.Write(out)
	}
	w.fout = out[:0]
	w.wmu.Unlock()
	if err != nil {
		w.conn.Close()
	}
}

func (w *connWriter) run() {
	var out []byte
	for {
		select {
		case <-w.wake:
		case <-w.done:
			return
		}
		// Same trick as the client mux's writer: yield while the buffer is
		// still growing, so a window's worth of responses rides one Write.
		runtime.Gosched()
		w.mu.Lock()
		n := len(w.buf)
		w.mu.Unlock()
		for i := 0; n > 0 && i < 4; i++ {
			runtime.Gosched()
			w.mu.Lock()
			grown := len(w.buf)
			w.mu.Unlock()
			if grown == n {
				break
			}
			n = grown
		}
		w.mu.Lock()
		out, w.buf = w.buf, out[:0]
		w.mu.Unlock()
		if len(out) == 0 {
			continue
		}
		w.wmu.Lock()
		_, err := w.conn.Write(out)
		w.wmu.Unlock()
		if err != nil {
			w.conn.Close() // unblocks the read loop
			return
		}
	}
}

// serveConn runs one client connection: a read loop feeding a fixed worker
// pool through pooled request contexts. Workers handle requests
// concurrently — the tag is what lets their responses return out of order —
// and serialize only on the coalescing response writer and the stripe locks
// their ops touch. The free list of contexts bounds the per-connection work
// in flight: when all connWorkers contexts are busy the read loop itself
// blocks, pushing backpressure into the socket.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	work := make(chan *reqCtx, connWorkers)
	free := make(chan *reqCtx, connWorkers)
	for i := 0; i < connWorkers; i++ {
		free <- &reqCtx{}
	}
	w := newConnWriter(conn)
	defer close(w.done)
	var wg sync.WaitGroup
	wg.Add(connWorkers)
	for i := 0; i < connWorkers; i++ {
		go func() {
			defer wg.Done()
			for ctx := range work {
				s.serveReq(w, ctx)
				free <- ctx
			}
		}()
	}

	r := bufio.NewReader(conn)
	var hdr [frameHeader]byte
	for {
		ctx := <-free
		tag, op, payload, err := readFrameInto(r, ctx.in, &hdr)
		ctx.in = payload
		if err != nil {
			free <- ctx
			break // peer hung up (or died mid-frame); its state is already durable
		}
		ctx.tag, ctx.op = tag, op
		if op == opRead && s.tryInlineRead(w, ctx) {
			free <- ctx
		} else {
			work <- ctx
		}
		// Batch boundary: the inbound burst is drained, the next ReadFull
		// blocks. Flush whatever responses accumulated synchronously — the
		// whole burst's answers ride one Write with no flusher handoff.
		if r.Buffered() == 0 {
			w.flushNow()
		}
	}
	close(work)
	wg.Wait()
}

// tryInlineRead serves an uncontended read right on the demux goroutine,
// appending the response frame straight from the store into the write
// buffer — no worker handoff, no intermediate copy — so the dominant opcode
// of a read-mostly pipeline costs two channel operations and a memcpy less
// per request. TryLock keeps the no-blocking guarantee: a read whose stripe
// is held (or any parse/locate error) falls back to the worker pool,
// exactly as if the fast path did not exist.
func (s *Server) tryInlineRead(w *connWriter, ctx *reqCtx) bool {
	p := &payloadReader{b: ctx.in}
	a := transport.Addr(p.u64())
	n := int(p.u32())
	if p.err != nil {
		return false
	}
	reg, err := s.st.locate(a, n)
	if err != nil {
		return false
	}
	if !reg.mu.TryLock() {
		return false
	}
	// Stripe lock before buffer lock, always in this order; workers never
	// nest the two (handle releases the stripe before post takes the
	// buffer), so the ordering is acyclic.
	w.mu.Lock()
	b := appendU32(w.buf, uint32(5+n))
	b = appendU32(b, ctx.tag)
	b = append(b, statusOK)
	off := len(b)
	if cap(b) < off+n {
		nb := make([]byte, off, (off+n)*2)
		copy(nb, b)
		b = nb
	}
	b = b[:off+n]
	copy(b[off:], reg.b)
	w.buf = b
	w.mu.Unlock()
	reg.mu.Unlock()
	s.st.count(reg)
	return true
}

// serveReq handles one request and posts its response frame.
func (s *Server) serveReq(w *connWriter, ctx *reqCtx) {
	resp, err := s.handle(ctx.op, ctx.in, ctx.resp[:0])
	status := statusOK
	if err != nil {
		status = statusErr
		resp = append(resp[:0], err.Error()...)
	}
	w.post(ctx.tag, status, resp)
	ctx.resp = resp[:0] // keep the grown backing array; post copied it out
	if ctx.op == opShutdown && err == nil {
		w.flushNow()
		s.Close()
	}
}

// handle applies one request frame, appending the response payload to resp
// and returning it.
func (s *Server) handle(op byte, payload, resp []byte) ([]byte, error) {
	p := &payloadReader{b: payload}
	st := s.st
	switch op {
	case opPing:
		resp = appendU32(resp, protocolVersion)
		resp = appendU32(resp, OnChipBytes)
		return appendU64(resp, uint64(time.Since(serverStart).Nanoseconds())), nil

	case opRead:
		a := transport.Addr(p.u64())
		n := int(p.u32())
		if p.err != nil {
			return resp, p.err
		}
		reg, err := st.locate(a, n)
		if err != nil {
			return resp, err
		}
		if cap(resp) < n {
			resp = append(resp[:0], make([]byte, n)...)
		}
		resp = resp[:n]
		reg.mu.Lock()
		copy(resp, reg.b)
		reg.mu.Unlock()
		st.count(reg)
		return resp, nil

	case opReadBatch:
		count := int(p.u32())
		for i := 0; i < count; i++ {
			a := transport.Addr(p.u64())
			n := int(p.u32())
			if p.err != nil {
				return resp, p.err
			}
			reg, err := st.locate(a, n)
			if err != nil {
				return resp, err
			}
			off := len(resp)
			resp = append(resp, make([]byte, n)...)
			reg.mu.Lock()
			copy(resp[off:], reg.b)
			reg.mu.Unlock()
			st.count(reg)
		}
		return resp, p.err

	case opWriteBatch:
		count := int(p.u32())
		for i := 0; i < count; i++ {
			a := transport.Addr(p.u64())
			n := int(p.u32())
			data := p.bytes(n)
			if p.err != nil {
				return resp, p.err
			}
			reg, err := st.locate(a, n)
			if err != nil {
				return resp, err
			}
			reg.mu.Lock()
			copy(reg.b, data)
			reg.mu.Unlock()
			st.count(reg)
		}
		return resp, p.err

	case opCAS:
		a := transport.Addr(p.u64())
		old, new := p.u64(), p.u64()
		if p.err != nil {
			return resp, p.err
		}
		reg, err := st.locate(a, 8)
		if err != nil {
			return resp, err
		}
		reg.mu.Lock()
		prev := leU64(reg.b)
		swapped := byte(0)
		if prev == old {
			putU64(reg.b, new)
			swapped = 1
		}
		reg.mu.Unlock()
		st.count(reg)
		return append(appendU64(resp, prev), swapped), nil

	case opCAS16:
		a := transport.Addr(p.u64())
		old, new := p.u16(), p.u16()
		if p.err != nil {
			return resp, p.err
		}
		reg, err := st.locate(a, 2)
		if err != nil {
			return resp, err
		}
		reg.mu.Lock()
		prev := uint16(reg.b[0]) | uint16(reg.b[1])<<8
		swapped := byte(0)
		if prev == old {
			reg.b[0], reg.b[1] = byte(new), byte(new>>8)
			swapped = 1
		}
		reg.mu.Unlock()
		st.count(reg)
		return append(resp, byte(prev), byte(prev>>8), swapped), nil

	case opFAA:
		a := transport.Addr(p.u64())
		delta := p.u64()
		if p.err != nil {
			return resp, p.err
		}
		reg, err := st.locate(a, 8)
		if err != nil {
			return resp, err
		}
		reg.mu.Lock()
		prev := leU64(reg.b)
		putU64(reg.b, prev+delta)
		reg.mu.Unlock()
		st.count(reg)
		return appendU64(resp, prev), nil

	case opGrow:
		st.totalOps.Add(1)
		return appendU64(resp, st.grow()), nil

	case opStats:
		snap := st.snap.Load()
		resp = appendU64(resp, uint64(st.totalOps.Load()))
		resp = appendU32(resp, uint32(len(snap.ops)))
		for _, c := range snap.ops {
			resp = appendU64(resp, uint64(c.Load()))
		}
		return resp, nil

	case opShutdown:
		return resp, nil

	default:
		return resp, fmt.Errorf("tcp: unknown opcode %d", op)
	}
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
