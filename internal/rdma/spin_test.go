package rdma

import (
	"testing"

	"sherman/internal/sim"
)

func spinFabric() *Fabric {
	return NewFabric(sim.DefaultParams(), 2, 2)
}

func TestCASBacklogDelaysCompletion(t *testing.T) {
	f := spinFabric()
	f.Servers()[0].Grow()
	a := MakeAddr(0, 0x100)

	// Without backlog.
	c1 := f.NewClient(0)
	_, ok := c1.CASBacklog(a, 0, 1, 0)
	if !ok {
		t.Fatal("CAS failed")
	}
	plain := c1.Now()

	// Same command behind 50 us of queued atomics.
	c2 := f.NewClient(1)
	_, ok = c2.CASBacklog(a, 1, 2, 50_000)
	if !ok {
		t.Fatal("backlogged CAS failed")
	}
	if got := c2.Now(); got < plain+50_000-1000 {
		t.Errorf("backlogged CAS completed at %d, want >= ~%d", got, plain+50_000)
	}
}

func TestCAS16Backlog(t *testing.T) {
	f := spinFabric()
	a := MakeOnChipAddr(0, 4)
	c := f.NewClient(0)
	prev, ok := c.CAS16Backlog(a, 0, 7, 10_000)
	if !ok || prev != 0 {
		t.Fatalf("CAS16Backlog = (%d,%v)", prev, ok)
	}
	if c.Now() < 10_000 {
		t.Errorf("clock %d did not include the backlog", c.Now())
	}
	// The 16-bit field must hold the swapped value.
	var buf [8]byte
	c.Read(MakeOnChipAddr(0, 0), buf[:])
	if got := uint16(buf[4]) | uint16(buf[5])<<8; got != 7 {
		t.Errorf("on-chip field = %d, want 7", got)
	}
}

func TestAtomicSvcNS(t *testing.T) {
	f := spinFabric()
	c := f.NewClient(0)
	host := c.AtomicSvcNS(MakeAddr(0, 8))
	chip := c.AtomicSvcNS(MakeOnChipAddr(0, 8))
	if host <= chip {
		t.Errorf("host atomic service %d should exceed on-chip %d (PCIe cost)", host, chip)
	}
	p := f.P
	if host != p.HostAtomicNS+p.HostAtomicUnitNS || chip != p.OnChipAtomicNS+p.OnChipAtomicUnitNS {
		t.Errorf("service sums wrong: host %d, chip %d", host, chip)
	}
}

func TestChargeSpinCountsAndClock(t *testing.T) {
	f := spinFabric()
	f.Servers()[0].Grow()
	a := MakeAddr(0, 0x40)
	c := f.NewClient(0)

	const from, to, cadence = 0, 100_000, 2_500
	n := c.ChargeSpin(a, from, to, cadence)
	want := 0
	for x := int64(from); x+cadence < to; x += cadence {
		want++
	}
	if n != want {
		t.Errorf("retries = %d, want %d", n, want)
	}
	if c.Now() != to {
		t.Errorf("clock = %d, want %d", c.Now(), to)
	}
	if c.M.CASFailures != int64(n) || c.M.RoundTrips != int64(n) {
		t.Errorf("metrics: failures=%d roundtrips=%d, want %d", c.M.CASFailures, c.M.RoundTrips, n)
	}
}

func TestChargeSpinEmptyWindow(t *testing.T) {
	f := spinFabric()
	f.Servers()[0].Grow()
	c := f.NewClient(0)
	c.Clk.Set(500)
	if n := c.ChargeSpin(MakeAddr(0, 0x40), 500, 400, 1000); n != 0 {
		t.Errorf("retries for empty window = %d", n)
	}
	if c.Now() != 500 {
		t.Errorf("clock moved backwards to %d", c.Now())
	}
	// Zero/negative cadence falls back rather than looping forever.
	if n := c.ChargeSpin(MakeAddr(0, 0x40), 500, 10_000, 0); n <= 0 {
		t.Errorf("fallback cadence produced %d retries", n)
	}
}

func TestChargeSpinBounded(t *testing.T) {
	f := spinFabric()
	f.Servers()[0].Grow()
	c := f.NewClient(0)
	// A pathologically long window must not loop unboundedly.
	n := c.ChargeSpin(MakeAddr(0, 0x40), 0, 1<<40, 100)
	if n != maxSpinCharges {
		t.Errorf("retries = %d, want the %d cap", n, maxSpinCharges)
	}
}

func TestClientCount(t *testing.T) {
	f := spinFabric()
	if f.ClientCount() != 0 {
		t.Fatalf("fresh fabric has %d clients", f.ClientCount())
	}
	for i := 0; i < 5; i++ {
		f.NewClient(i % 2)
	}
	if f.ClientCount() != 5 {
		t.Fatalf("client count = %d, want 5", f.ClientCount())
	}
}

// TestAtomicUnitSaturation verifies the per-NIC atomic pipeline bounds
// aggregate host-atomic throughput: hammering distinct addresses from many
// clients completes no faster than unit capacity allows.
func TestAtomicUnitSaturation(t *testing.T) {
	p := sim.DefaultParams()
	f := NewFabric(p, 1, 4)
	f.Servers()[0].Grow()

	const clients, casEach = 8, 200
	cs := make([]*Client, clients)
	for i := range cs {
		cs[i] = f.NewClient(i % 4)
	}
	// Interleave in rounds so all clients' commands overlap in virtual time.
	for r := 0; r < casEach; r++ {
		for i, c := range cs {
			a := MakeAddr(0, uint64(0x1000+i*0x200+r*8))
			c.CAS(a, 0, 1)
		}
	}
	var maxClock int64
	for _, c := range cs {
		if c.Now() > maxClock {
			maxClock = c.Now()
		}
	}
	total := int64(clients * casEach)
	minTime := total * p.HostAtomicUnitNS // pipeline-bound lower bound
	if maxClock < minTime {
		t.Errorf("%d atomics finished at %d ns, faster than the %d ns pipeline bound",
			total, maxClock, minTime)
	}
}
