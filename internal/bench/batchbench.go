package bench

import (
	"fmt"

	"sherman/internal/core"
	"sherman/internal/workload"
)

// BatchTables reports the batch execution pipeline: the batched-vs-
// sequential sweep that quantifies the per-operation amortization, and a
// batched YCSB-style mix table. Not paper figures — the paper batches only
// the dependent writes *within* one operation (§4.5); these tables measure
// what batching *across* operations adds on top. When c is non-nil, typed
// metrics are recorded for the JSON report and regression gate.
func BatchTables(s Scale, c *Collector) []*Table {
	return []*Table{BatchSweep(s, c), BatchYCSB(s)}
}

// BatchSweep compares batched and sequential execution of a uniform
// write-only workload at increasing batch sizes, for both engines. batch=1
// is the sequential path; RT/op and lock acq/op are measured-window
// per-operation costs, and ops/group is the number of operations each leaf
// lock acquisition served.
func BatchSweep(s Scale, c *Collector) *Table {
	t := NewTable("Batch pipeline: batched vs sequential Put (uniform write-only)",
		"config", "keys", "batch", "Mops", "RT/op", "lock acq/op", "ops/group", "p50(us)", "p99(us)")
	// The sparse keyspace is the paper's scale; the dense one (a hot table
	// a real batch client would hammer) co-locates batch keys in leaves,
	// showing the leaf-group amortization at full strength.
	for _, keys := range []uint64{s.Keys, s.Keys / 16} {
		for _, cfg := range []core.Config{core.ShermanConfig(), core.FGPlusConfig()} {
			for _, bs := range []int{1, 8, 32, 128} {
				e := s.treeExp(cfg.Name(), workload.WriteOnly, workload.Uniform, cfg)
				e.Keys = keys
				e.BatchSize = bs
				r := RunTreeN(e, s.runs())
				group := "-"
				if g := r.Rec.BatchLeafGroups; g > 0 {
					group = fmt.Sprintf("%.2f", float64(r.Rec.BatchedOps)/float64(g))
				}
				t.Add(cfg.Name(), fmt.Sprint(keys), fmt.Sprint(bs), MopsString(r.Mops),
					fmt.Sprintf("%.2f", r.RoundTripsPerOp),
					fmt.Sprintf("%.2f", r.LockAcqPerOp),
					group, USString(r.P50), USString(r.P99))
				c.Add(Metric{
					Exp:  "batch",
					Name: fmt.Sprintf("batch/%s/keys=%d/bs=%d", cfg.Name(), keys, bs),
					// The dense hot-table cells sit in a bistable convoy
					// regime; report them, but don't gate on them.
					Gate: keys == s.Keys,
					Mops: r.Mops, P50NS: r.P50, P99NS: r.P99,
					RTPerOp: r.RoundTripsPerOp, LockAcqPerOp: r.LockAcqPerOp,
				})
			}
		}
	}
	t.Note("batch=1 is the sequential path; RT/op and acq/op are measured-window per-operation costs")
	t.Note("p50/p99 are amortized per-op latencies: a batch of n completing in T books T/n per operation")
	return t
}

// BatchYCSB runs batched YCSB-style mixes (batch clients submitting groups
// of operations) against the full Sherman configuration.
func BatchYCSB(s Scale) *Table {
	t := NewTable("Batched YCSB-style workloads (Sherman, zipfian 0.99)",
		"workload", "batch", "Mops", "RT/op", "p99(us)")
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"write-only", workload.WriteOnly},
		{"update-heavy (A-like)", workload.WriteIntensive},
		{"read-mostly (B-like)", workload.ReadIntensive},
	}
	for _, m := range mixes {
		for _, bs := range []int{1, 32} {
			e := s.treeExp(m.name, m.mix, workload.Zipfian, core.ShermanConfig())
			e.BatchSize = bs
			r := RunTreeN(e, s.runs())
			t.Add(m.name, fmt.Sprint(bs), MopsString(r.Mops),
				fmt.Sprintf("%.2f", r.RoundTripsPerOp), USString(r.P99))
		}
	}
	t.Note("batched clients keep per-key semantics: a batch is equivalent to its operations applied in order")
	return t
}
