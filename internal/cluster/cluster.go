// Package cluster assembles a disaggregated-memory cluster: memory servers,
// compute servers, the simulated RDMA fabric between them, and the cluster
// superblock holding the tree's root pointer.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/alloc"
	"sherman/internal/hocl"
	"sherman/internal/rdma"
	"sherman/internal/sim"
	"sherman/internal/transport"
)

// Superblock layout, at offset 0 of memory server 0. The root pointer is
// updated by RDMA_CAS when the root splits; clients re-read it whenever
// cached-root validation (level / fence checks) fails.
const (
	superRootOff  = 0  // 8 B: rdma.Addr of the current root node
	superLevelOff = 8  // 8 B: height hint (root node level)
	superSize     = 64 // one line, so root updates are atomic
)

// Cluster is a running disaggregated-memory deployment.
type Cluster struct {
	F *rdma.Fabric
	P sim.Params

	// AllocStats aggregates allocator activity across all client threads.
	AllocStats alloc.Stats

	// Fwd is the chunk forwarding map of the live-migration protocol:
	// compute-side shared state redirecting addresses of migrated chunks to
	// their new home until every parent pointer is repointed.
	Fwd *alloc.Forwarding

	// Rep is the chunk→replicas placement table (nil when replication is
	// off). Allocators register every fresh chunk's mirror copies here;
	// writers mirror through it; MS-death promotion rewrites it.
	Rep *alloc.ReplicaMap

	rf int // configured replication factor (copies incl. primary; 0/1 = off)

	numThreads []atomic.Int64 // per CS, for diagnostics

	// invalidators are per-tree cache invalidation hooks, run by the
	// MS-death promotion listener after it forwards a chunk to its replica
	// so no compute server keeps steering into the dead server's addresses.
	invMu        sync.Mutex
	invalidators []func(alloc.ChunkID)

	failovers atomic.Int64

	// migMu serializes migration engines cluster-wide: two concurrent
	// rebalances must never relocate the same chunk. Held in real time only
	// (the owner's verbs still cost virtual time like any client's).
	migMu sync.Mutex
}

// MigrationLock enters the cluster-wide migration critical section.
func (c *Cluster) MigrationLock() { c.migMu.Lock() }

// MigrationUnlock leaves the migration critical section.
func (c *Cluster) MigrationUnlock() { c.migMu.Unlock() }

// Config sizes a cluster.
type Config struct {
	// NumMS and NumCS are the memory- and compute-server counts. The paper's
	// testbed emulates 8 of each (§5.1.1).
	NumMS int
	NumCS int
	// MaxMS caps online memory-server scale-out (AddMS); 0 means NumMS plus
	// a small default headroom. Lock tables are sized for it up front.
	MaxMS int
	// ReplicationFactor is the number of copies each data chunk keeps,
	// including the primary. 0 or 1 disables replication (the seed
	// behavior); at 2+ every chunk carries factor-1 mirror copies on
	// distinct other servers, writes are mirrored one-sided, and a memory
	// server becomes a survivable unit of failure.
	ReplicationFactor int
	// Params overrides the fabric timing model; zero value means defaults.
	Params sim.Params
}

// New builds the cluster and reserves the superblock chunk on MS 0 so that
// offset 0 is never handed to the allocator (Addr 0 is the nil pointer).
func New(cfg Config) *Cluster {
	p := cfg.Params
	if p.RTTNS == 0 {
		p = sim.DefaultParams()
	}
	if cfg.NumMS <= 0 || cfg.NumCS <= 0 {
		panic(fmt.Sprintf("cluster: invalid sizes %d MS / %d CS", cfg.NumMS, cfg.NumCS))
	}
	maxMS := cfg.MaxMS
	if maxMS == 0 {
		maxMS = cfg.NumMS + rdma.DefaultServerHeadroom
	}
	rf := cfg.ReplicationFactor
	if rf < 0 || rf > alloc.MaxReplicationFactor {
		panic(fmt.Sprintf("cluster: replication factor %d not in [0,%d]", rf, alloc.MaxReplicationFactor))
	}
	if rf > cfg.NumMS {
		panic(fmt.Sprintf("cluster: replication factor %d exceeds %d memory servers", rf, cfg.NumMS))
	}
	f := rdma.NewFabricCap(p, cfg.NumMS, maxMS, cfg.NumCS)
	f.Servers()[0].Grow() // superblock chunk
	c := &Cluster{F: f, P: p, Fwd: alloc.NewForwarding(), rf: rf, numThreads: make([]atomic.Int64, cfg.NumCS)}
	if rf > 1 {
		c.Rep = alloc.NewReplicaMap()
		// Promotion listener: runs synchronously in the MS-death chain,
		// after the fabric has gated the dead server's memory. Installing
		// the forwarding entries here — before the triggering verb proceeds
		// — means a reader that observes the death already finds the chase
		// target published; there is no window where the data is dark.
		f.Faults.OnMSDeath(func(ms int, _ int64) {
			promoted := c.Rep.FailoverServer(uint16(ms), f.Faults.MSAlive)
			for _, p := range promoted {
				c.Fwd.InstallReplica(p.Old, p.NewBase)
				c.invMu.Lock()
				invs := c.invalidators
				c.invMu.Unlock()
				for _, inv := range invs {
					inv(p.Old)
				}
			}
			c.failovers.Add(int64(len(promoted)))
		})
	}
	return c
}

// ReplicationFactor returns the configured copies per chunk (0/1 = off).
func (c *Cluster) ReplicationFactor() int { return c.rf }

// OnChunkInvalidate registers a hook the MS-death promotion listener calls
// for every chunk it fails over. Trees register their index-cache
// invalidation here so cached pointers into a dead server stop steering.
func (c *Cluster) OnChunkInvalidate(fn func(alloc.ChunkID)) {
	c.invMu.Lock()
	c.invalidators = append(c.invalidators, fn)
	c.invMu.Unlock()
}

// KillMS fails memory server ms: its memory goes dark (reads zero-fill,
// writes and atomics discard) and, under replication, every chunk it
// hosted fails over to its freshest replica before this call returns.
// Server 0 hosts the cluster superblock and cannot be killed.
func (c *Cluster) KillMS(ms int) error {
	if ms <= 0 || ms >= c.NumMS() {
		return fmt.Errorf("cluster: cannot kill memory server %d (valid: 1..%d; server 0 holds the superblock)", ms, c.NumMS()-1)
	}
	if !c.F.Faults.MSAlive(ms) {
		return fmt.Errorf("cluster: memory server %d is already dead", ms)
	}
	c.F.Faults.KillMS(ms, c.F.Faults.LatestVerbV())
	return nil
}

// MSAlive reports whether memory server ms is live.
func (c *Cluster) MSAlive(ms int) bool { return c.F.Faults.MSAlive(ms) }

// MSUsable reports whether memory server ms should receive new placements:
// live and not draining.
func (c *Cluster) MSUsable(ms int) bool {
	return c.F.Faults.MSAlive(ms) && !c.F.Servers()[ms].Draining()
}

// Failovers returns the number of chunks promoted to a replica after a
// memory-server death.
func (c *Cluster) Failovers() int64 { return c.failovers.Load() }

// NumMS returns the current memory-server count.
func (c *Cluster) NumMS() int { return c.F.NumServers() }

// AddMS attaches one new (empty) memory server to the running cluster and
// returns its id. Safe while client threads run: lock managers wire the
// newcomer before it is published, and allocators start placing chunks on
// it at their next refill. Data moves only when a migration rebalances.
func (c *Cluster) AddMS() (int, error) {
	s, err := c.F.AddServer()
	if err != nil {
		return 0, err
	}
	return int(s.ID), nil
}

// SetDraining marks memory server ms as scaling in (or back): allocators
// skip it. The migration engine moves its contents elsewhere.
func (c *Cluster) SetDraining(ms int, v bool) {
	c.F.Servers()[ms].SetDraining(v)
}

// NumCS returns the compute-server count.
func (c *Cluster) NumCS() int { return len(c.F.CSs) }

// NewClient creates a client thread bound to compute server cs.
func (c *Cluster) NewClient(cs int) *rdma.Client {
	c.numThreads[cs].Add(1)
	return c.F.NewClient(cs)
}

// NewTransport is NewClient through the pluggable verb surface (the
// core.Backend spelling).
func (c *Cluster) NewTransport(cs int) transport.Transport { return c.NewClient(cs) }

// NewLockManager builds the HOCL lock manager over the simulated fabric.
func (c *Cluster) NewLockManager(cfg hocl.Config) *hocl.Manager {
	return hocl.NewManager(c.F, cfg)
}

// Forwarding is the chunk forwarding map shared by migration and failover.
func (c *Cluster) Forwarding() *alloc.Forwarding { return c.Fwd }

// Replicas is the chunk→replicas placement table (nil when replication is
// off).
func (c *Cluster) Replicas() *alloc.ReplicaMap { return c.Rep }

// RawWrite stores data at a without timing, mirrored to a's chunk replicas
// when the cluster replicates — setup-time writes (bulk load, compaction,
// free bits) must be failover-covered like any client write.
func (c *Cluster) RawWrite(a rdma.Addr, data []byte) {
	c.F.Servers()[a.MS()].WriteAt(a.Off(), data)
	if c.Rep == nil {
		return
	}
	var ts alloc.TargetSet
	if c.Rep.Targets(alloc.ChunkOf(a), &ts) {
		inner := a.Off() % rdma.DefaultChunkSize
		for i := 0; i < ts.N; i++ {
			ra := ts.Bases[i].Add(inner)
			c.F.Servers()[ra.MS()].WriteAt(ra.Off(), data)
		}
	}
}

// RawRead loads len(buf) bytes at a without timing, chasing the forwarding
// map when a's server is dead — so Validate and Stats keep working after a
// memory-server death, reading the promoted replicas instead.
func (c *Cluster) RawRead(a rdma.Addr, buf []byte) {
	for hop := 0; hop < alloc.MaxForwardHops; hop++ {
		if c.F.Faults.MSAlive(int(a.MS())) {
			break
		}
		fwd, ok := c.Fwd.Resolve(a)
		if !ok {
			break
		}
		a = fwd
	}
	c.F.Servers()[a.MS()].ReadAt(a.Off(), buf)
}

// Kill fails compute server cs: every client thread bound to it aborts with
// sim.Crash at its next fabric verb, its held locks become reclaimable after
// the lease expires, and its queued lock waiters are woken and aborted. nowV
// seeds the lease anchor; pass the caller's best bound on the victim's
// clocks (the injector keeps the max of it and every verb it has seen).
func (c *Cluster) Kill(cs int, nowV int64) {
	c.F.Faults.Kill(cs, nowV)
}

// Restart revives compute server cs under a new incarnation. Clients (and
// sessions) created before the crash stay dead; create fresh ones.
func (c *Cluster) Restart(cs int) {
	c.F.Faults.Restart(cs)
	c.numThreads[cs].Store(0)
}

// Faults exposes the fabric's deterministic fault injector for tests and
// the fault benchmark (verb-indexed and time-indexed kills, degradation,
// partitions).
func (c *Cluster) Faults() *sim.Faults { return c.F.Faults }

// NewThreadAllocator pairs a client thread with its stage-two allocator,
// wired for replica placement when the cluster replicates.
func (c *Cluster) NewThreadAllocator(cl transport.Transport, seed int) *alloc.ThreadAllocator {
	a := alloc.NewThreadAllocator(cl, &c.AllocStats, seed)
	if c.Rep != nil {
		a.SetReplication(c.Rep, c.rf)
	}
	return a
}

// NewBulk builds a setup-time bulk allocator, wired for replica placement
// when the cluster replicates.
func (c *Cluster) NewBulk() *alloc.Bulk {
	b := alloc.NewBulk(c.F, &c.AllocStats)
	if c.Rep != nil {
		b.SetReplication(c.Rep, c.rf)
	}
	return b
}

// SuperAddr returns the global address of the superblock field at off.
func SuperAddr(off uint64) rdma.Addr { return rdma.MakeAddr(0, off) }

// SetRoot stores the root pointer and level without timing; used by bulk
// load before client threads start.
func (c *Cluster) SetRoot(root rdma.Addr, level uint8) {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(root))
	binary.LittleEndian.PutUint64(buf[8:], uint64(level))
	c.F.Servers()[0].WriteAt(superRootOff, buf[:])
}

// ReadRoot fetches the current root pointer and level via RDMA_READ on the
// caller's clock. It works over any transport: the superblock lives at
// offset 0 of memory server 0 on every backend.
func ReadRoot(cl transport.Transport) (rdma.Addr, uint8) {
	var buf [16]byte
	cl.Read(SuperAddr(superRootOff), buf[:])
	root := rdma.Addr(binary.LittleEndian.Uint64(buf[0:]))
	level := uint8(binary.LittleEndian.Uint64(buf[8:]))
	return root, level
}

// CASRoot atomically swaps the root pointer from old to new; the level hint
// is then updated with a plain WRITE (readers tolerate a stale hint — they
// validate the fetched node's level field).
func CASRoot(cl transport.Transport, old, new rdma.Addr, newLevel uint8) bool {
	_, ok := cl.CAS(SuperAddr(superRootOff), uint64(old), uint64(new))
	if ok {
		var lv [8]byte
		binary.LittleEndian.PutUint64(lv[:], uint64(newLevel))
		cl.Write(SuperAddr(superLevelOff), lv[:])
	}
	return ok
}
