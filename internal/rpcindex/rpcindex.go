// Package rpcindex implements the RPC-based index design the paper argues
// *against* (§3.1): write operations are shipped to the memory servers'
// CPUs, in the style of Cell [47] and FaRM-Tree [54]. On a traditional
// architecture that is a fine design; on disaggregated memory, the 1-2
// wimpy cores per memory server become the write bottleneck — which is
// exactly the claim of Table 2 ("cannot be deployed on disaggregated
// memory"). This package exists to make that claim measurable against
// Sherman on an identical fabric (see bench.ExtraRPCBaseline).
//
// The index partitions keys across memory servers by hash. Writes execute
// server-side under the memory thread's mutex, billed to the server's CPU
// resource (sim queueing makes the wimpy-core ceiling emerge). Reads follow
// the papers' one-sided path: a client-side cache locates the entry and a
// single RDMA_READ-equivalent round trip fetches it. Server-side state is
// a plain map — the design point under study is the compute ceiling, not
// the node layout, so the data path is deliberately minimal.
package rpcindex

import (
	"sync"

	"sherman/internal/rdma"
)

// Index is an RPC-write index over a simulated fabric.
type Index struct {
	f      *rdma.Fabric
	shards []shard // one per memory server
}

type shard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

// New creates an empty index spanning all memory servers of the fabric.
func New(f *rdma.Fabric) *Index {
	ix := &Index{f: f, shards: make([]shard, f.NumServers())}
	for i := range ix.shards {
		ix.shards[i].m = make(map[uint64]uint64)
	}
	return ix
}

// shardFor routes a key to its home memory server.
func (ix *Index) shardFor(key uint64) uint16 {
	x := key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return uint16(x % uint64(len(ix.shards)))
}

// Handle is one client thread's connection to the index; one per
// goroutine, like core.Handle.
type Handle struct {
	ix *Index
	C  *rdma.Client
}

// NewHandle opens a client handle on compute server cs.
func (ix *Index) NewHandle(cs int) *Handle {
	return &Handle{ix: ix, C: ix.f.NewClient(cs)}
}

// Put ships the write to the key's home memory server via a two-sided RPC;
// the memory thread executes it (§3.1: "delegate index operations to CPUs
// of MSs via RPCs"). The RPC's service time queues on the wimpy core.
func (h *Handle) Put(key, value uint64) {
	ms := h.ix.shardFor(key)
	sh := &h.ix.shards[ms]
	h.C.Call(ms, func() {
		sh.mu.Lock()
		sh.m[key] = value
		sh.mu.Unlock()
	})
}

// Delete removes the key server-side, reporting presence.
func (h *Handle) Delete(key uint64) bool {
	ms := h.ix.shardFor(key)
	sh := &h.ix.shards[ms]
	var found bool
	h.C.Call(ms, func() {
		sh.mu.Lock()
		_, found = sh.m[key]
		delete(sh.m, key)
		sh.mu.Unlock()
	})
	return found
}

// Get reads one-sided, as Cell and FaRM-Tree do: the client-side cache
// resolves the entry's location and one RDMA_READ-sized round trip fetches
// it, without touching the memory thread.
func (h *Handle) Get(key uint64) (uint64, bool) {
	ms := h.ix.shardFor(key)
	sh := &h.ix.shards[ms]
	// Bill the verb: one read of an entry-sized payload at the home NIC.
	p := h.C.F.P
	srv := h.C.F.Servers()[ms]
	t := h.C.CS.Outbound.Acquire(h.C.Now(), p.OutboundMinNS)
	t = srv.Inbound.Acquire(t, p.PayloadNS(16, p.InboundMinNS))
	h.C.Clk.AdvanceTo(t + p.RTTNS)
	h.C.M.Reads++
	h.C.M.RoundTrips++
	h.C.M.OpRoundTrips++

	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok
}

// Len returns the total number of stored pairs (for tests).
func (ix *Index) Len() int {
	n := 0
	for i := range ix.shards {
		ix.shards[i].mu.Lock()
		n += len(ix.shards[i].m)
		ix.shards[i].mu.Unlock()
	}
	return n
}
