package layout

import (
	"cmp"
	"encoding/binary"
	"slices"
	"sort"
)

// Leaf views a node buffer as a leaf.
//
// TwoLevel mode: the entry array is unsorted; empty slots have key 0 (key 0
// is reserved, §4.4 "set key to null" on delete); every entry is wrapped in
// a pair of 4-bit versions (FEV/REV) so a single-entry write-back is
// self-verifying.
//
// Checksum mode: the entry array is sorted with an explicit count, and the
// node CRC covers everything; insertions shift entries, which is part of the
// write amplification Sherman removes (§3.2.3).
type Leaf struct{ Node }

// AsLeaf views the node as a leaf.
func AsLeaf(n Node) Leaf { return Leaf{n} }

// NewLeaf allocates and initializes a fresh leaf.
func NewLeaf(f Format, lower, upper uint64) Leaf {
	l := Leaf{NewNodeBuf(f)}
	l.Init(0, lower, upper)
	return l
}

// NewLeafIn initializes a fresh leaf in the caller's buffer (len must equal
// f.NodeSize) — the allocation-free variant for arena-backed callers.
func NewLeafIn(f Format, buf []byte, lower, upper uint64) Leaf {
	l := Leaf{ViewNode(f, buf)}
	l.Init(0, lower, upper)
	return l
}

// KV is one key-value pair.
type KV struct {
	Key   uint64
	Value uint64
}

// Cap returns the entry capacity.
func (l Leaf) Cap() int { return l.F.LeafCap }

// keyOff/valOff locate the fields of slot i.
func (l Leaf) keyOff(i int) int {
	off := l.F.leafEntryOff(i)
	if l.F.Mode == TwoLevel {
		return off + 1 // skip FEV
	}
	return off
}

func (l Leaf) valOff(i int) int { return l.keyOff(i) + l.F.KeySize }

// Key returns the key in slot i (0 = empty in TwoLevel mode).
func (l Leaf) Key(i int) uint64 { return l.getKey(l.keyOff(i)) }

// Value returns the value in slot i.
func (l Leaf) Value(i int) uint64 { return l.getU64(l.valOff(i)) }

// FEV and REV return the entry versions of slot i (TwoLevel mode).
func (l Leaf) FEV(i int) uint8 { return l.B[l.F.leafEntryOff(i)] & 0xF }

// REV returns the rear entry version of slot i.
func (l Leaf) REV(i int) uint8 {
	return l.B[l.F.leafEntryOff(i)+l.F.LeafEntSize-1] & 0xF
}

// EntryConsistent reports whether slot i's two versions match (§4.4 lookup,
// entry-level check).
func (l Leaf) EntryConsistent(i int) bool { return l.FEV(i) == l.REV(i) }

// SetEntry stores (key, value) into slot i; in TwoLevel mode it also bumps
// both entry versions, making the slot's write-back self-describing.
func (l Leaf) SetEntry(i int, key, value uint64) {
	l.putKey(l.keyOff(i), key)
	l.putU64(l.valOff(i), value)
	if l.F.Mode == TwoLevel {
		off := l.F.leafEntryOff(i)
		v := (l.B[off] + 1) & 0xF
		l.B[off] = v
		l.B[off+l.F.LeafEntSize-1] = v
	}
}

// ClearEntry marks slot i deleted (key 0) and bumps its versions.
func (l Leaf) ClearEntry(i int) { l.SetEntry(i, 0, 0) }

// EntrySpan returns the buffer offset and length of slot i's write-back
// region (the 17-byte granule of Figure 14(c), including FEV and REV).
func (l Leaf) EntrySpan(i int) (off, size int) {
	return l.F.leafEntryOff(i), l.F.LeafEntSize
}

// Count returns the number of live entries.
func (l Leaf) Count() int {
	if l.F.Mode == Checksum {
		return l.getU16(offCountCksum)
	}
	n := 0
	for i := 0; i < l.Cap(); i++ {
		if l.Key(i) != 0 {
			n++
		}
	}
	return n
}

// Find locates key. TwoLevel mode scans the whole (unsorted) node — the
// added CPU cost the paper accepts for microsecond-scale networks (§4.4);
// Checksum mode binary-searches the sorted array.
func (l Leaf) Find(key uint64) (int, bool) {
	if l.F.Mode == Checksum {
		cnt := l.Count()
		i := sort.Search(cnt, func(i int) bool { return l.Key(i) >= key })
		if i < cnt && l.Key(i) == key {
			return i, true
		}
		return -1, false
	}
	// Stride the buffer directly: the per-slot accessors copy the whole
	// view struct per call, which dominates the scan on warm reads.
	ent := l.F.LeafEntSize
	off := headerEnd + 1 // first slot's key (skip FEV)
	b := l.B
	for i, n := 0, l.F.LeafCap; i < n; i++ {
		if binary.LittleEndian.Uint64(b[off:]) == key {
			return i, true
		}
		off += ent
	}
	return -1, false
}

// FindFree returns an empty slot, or -1 when the leaf is full. Only
// meaningful in TwoLevel mode.
func (l Leaf) FindFree() int {
	ent := l.F.LeafEntSize
	off := headerEnd + 1
	b := l.B
	for i, n := 0, l.F.LeafCap; i < n; i++ {
		if binary.LittleEndian.Uint64(b[off:]) == 0 {
			return i
		}
		off += ent
	}
	return -1
}

// InsertSorted inserts (key, value) preserving sort order (Checksum mode),
// shifting the tail. Returns false when full. An existing key is updated in
// place.
func (l Leaf) InsertSorted(key, value uint64) bool {
	cnt := l.Count()
	i := sort.Search(cnt, func(i int) bool { return l.Key(i) >= key })
	if i < cnt && l.Key(i) == key {
		l.putU64(l.valOff(i), value)
		return true
	}
	if cnt == l.Cap() {
		return false
	}
	start := l.F.leafEntryOff(i)
	end := l.F.leafEntryOff(cnt)
	copy(l.B[start+l.F.LeafEntSize:end+l.F.LeafEntSize], l.B[start:end])
	l.putKey(l.keyOff(i), key)
	l.putU64(l.valOff(i), value)
	l.putU16(offCountCksum, cnt+1)
	return true
}

// DeleteSorted removes key from a sorted leaf, shifting the tail left.
func (l Leaf) DeleteSorted(key uint64) bool {
	cnt := l.Count()
	i := sort.Search(cnt, func(i int) bool { return l.Key(i) >= key })
	if i >= cnt || l.Key(i) != key {
		return false
	}
	start := l.F.leafEntryOff(i)
	end := l.F.leafEntryOff(cnt)
	copy(l.B[start:], l.B[start+l.F.LeafEntSize:end])
	l.putU16(offCountCksum, cnt-1)
	return true
}

// Entries returns the live entries sorted by key (used before splitting an
// unsorted leaf: Figure 7 line 21 sorts then moves).
func (l Leaf) Entries() []KV { return l.AppendEntries(nil) }

// AppendEntries appends the live entries, sorted by key, onto dst and returns
// the extended slice — the allocation-free variant for callers that recycle a
// scratch buffer. Only the appended region is sorted; dst's prefix is
// untouched.
func (l Leaf) AppendEntries(dst []KV) []KV {
	start := len(dst)
	if l.F.Mode == Checksum {
		cnt := l.Count()
		for i := 0; i < cnt; i++ {
			dst = append(dst, KV{l.Key(i), l.Value(i)})
		}
		return dst
	}
	for i := 0; i < l.Cap(); i++ {
		if k := l.Key(i); k != 0 {
			dst = append(dst, KV{k, l.Value(i)})
		}
	}
	// Keys within a leaf are distinct, so an unstable in-place sort suffices
	// (and, unlike sort.Slice, allocates nothing).
	slices.SortFunc(dst[start:], func(a, b KV) int { return cmp.Compare(a.Key, b.Key) })
	return dst
}

// SetEntries rewrites the leaf's entry area from sorted kvs (post-split
// write-back). The caller bumps node versions / checksum as appropriate.
func (l Leaf) SetEntries(kvs []KV) {
	if len(kvs) > l.Cap() {
		panic("layout: too many entries for leaf")
	}
	// Clear the whole entry area first so stale slots cannot resurface.
	lo := l.F.leafEntryOff(0)
	hi := l.F.leafEntryOff(l.Cap())
	for i := lo; i < hi; i++ {
		l.B[i] = 0
	}
	for i, kv := range kvs {
		if l.F.Mode == Checksum {
			l.putKey(l.keyOff(i), kv.Key)
			l.putU64(l.valOff(i), kv.Value)
		} else {
			l.SetEntry(i, kv.Key, kv.Value)
		}
	}
	if l.F.Mode == Checksum {
		l.putU16(offCountCksum, len(kvs))
	}
}
