package alloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/rdma"
)

// MaxReplicationFactor bounds ClusterConfig.ReplicationFactor; MaxReplicas
// is the number of mirror copies a chunk can carry beside its primary.
// Fixed small bounds let the hot mirror path hand replica targets around in
// stack arrays instead of heap slices.
const (
	MaxReplicationFactor = 4
	MaxReplicas          = MaxReplicationFactor - 1
)

// replicaSet is one primary chunk's mirror copies. Published sets are
// immutable (structural changes swap in a fresh set under ReplicaMap.mu);
// only the applied watermarks and pending flags — shared across generations
// by pointer — mutate in place, atomically.
type replicaSet struct {
	n       int
	bases   [MaxReplicas]rdma.Addr
	applied [MaxReplicas]*atomic.Int64
	// pending[i] non-nil-and-true marks a replica whose bulk backfill
	// (re-replication CopyChunk) is still running: it receives mirrors like
	// any replica, but promotion prefers any completed replica over it
	// regardless of watermark — its watermark tracks only the recent
	// mirrors, not the history the unfinished copy is still delivering.
	pending [MaxReplicas]*atomic.Bool
}

// complete reports whether replica i's bulk copy (if any) has finished.
func (s *replicaSet) complete(i int) bool {
	return s.pending[i] == nil || !s.pending[i].Load()
}

// TargetSet is a caller-owned snapshot of one chunk's replica targets,
// filled by ReplicaMap.Targets without allocating. NoteApplied advances the
// shared per-replica watermark after a mirror doorbell completes.
type TargetSet struct {
	N       int
	Bases   [MaxReplicas]rdma.Addr
	applied [MaxReplicas]*atomic.Int64
}

// NoteApplied raises replica i's applied watermark to v (monotone max) —
// the virtual time up to which that replica has absorbed every mirrored
// write of its chunk.
func (t *TargetSet) NoteApplied(i int, v int64) {
	NoteWatermark(t.applied[i], v)
}

// Watermark returns replica i's shared applied-watermark cell, so a mirror
// engine batching writes across chunks can note completion per posted write
// without re-resolving the chunk.
func (t *TargetSet) Watermark(i int) *atomic.Int64 { return t.applied[i] }

// NoteWatermark raises w to v (monotone max).
func NoteWatermark(w *atomic.Int64, v int64) {
	for {
		old := w.Load()
		if v <= old || w.CompareAndSwap(old, v) {
			return
		}
	}
}

// Promotion records one chunk failed over to a replica after its primary's
// memory server died.
type Promotion struct {
	// Old is the dead primary chunk; NewBase the promoted replica chunk's
	// base (same-offset addressing, like a forwarding entry).
	Old     ChunkID
	NewBase rdma.Addr
	// AppliedV is the promoted replica's applied watermark at promotion —
	// every mirrored write up to this virtual time is present.
	AppliedV int64
}

// ReplicaMap is the cluster-wide chunk→replicas placement table. Like the
// forwarding map it is compute-side shared state, not fabric memory. The
// steady-state mirror path reads it lock-free through an atomically
// published copy-on-write map; structural changes (chunk registration,
// failover, re-replication) serialize on a mutex and swap in a new map.
type ReplicaMap struct {
	mu sync.Mutex
	m  atomic.Pointer[map[ChunkID]*replicaSet]

	registered atomic.Int64
	promotions atomic.Int64
	dropped    atomic.Int64 // replica copies dropped with their dead server
	lost       atomic.Int64 // chunks whose primary died with no live replica
}

// NewReplicaMap creates an empty replica map.
func NewReplicaMap() *ReplicaMap {
	r := &ReplicaMap{}
	m := make(map[ChunkID]*replicaSet)
	r.m.Store(&m)
	return r
}

// Targets fills out with chunk ck's replica targets and reports whether ck
// is a registered (replicated) primary chunk. Allocation-free; safe for
// concurrent use with structural changes.
func (r *ReplicaMap) Targets(ck ChunkID, out *TargetSet) bool {
	s, ok := (*r.m.Load())[ck]
	if !ok {
		out.N = 0
		return false
	}
	out.N = s.n
	out.Bases = s.bases
	out.applied = s.applied
	return true
}

// Replicas returns the number of live replica copies chunk ck carries.
func (r *ReplicaMap) Replicas(ck ChunkID) int {
	if s, ok := (*r.m.Load())[ck]; ok {
		return s.n
	}
	return 0
}

// Registered reports whether ck is a replicated primary chunk.
func (r *ReplicaMap) Registered(ck ChunkID) bool {
	_, ok := (*r.m.Load())[ck]
	return ok
}

// swap publishes a structural change. Callers hold r.mu.
func (r *ReplicaMap) swap(mutate func(m map[ChunkID]*replicaSet)) {
	old := *r.m.Load()
	m := make(map[ChunkID]*replicaSet, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	mutate(m)
	r.m.Store(&m)
}

func newSet(bases ...rdma.Addr) *replicaSet {
	if len(bases) > MaxReplicas {
		panic(fmt.Sprintf("alloc: %d replicas exceeds MaxReplicas=%d", len(bases), MaxReplicas))
	}
	s := &replicaSet{n: len(bases)}
	for i, b := range bases {
		s.bases[i] = b
		s.applied[i] = new(atomic.Int64)
	}
	return s
}

// Register publishes freshly placed replica chunks for primary chunk ck.
// Every base must lie on a distinct memory server, none on ck's own. Called
// once per chunk at allocation time, before any node is carved from it.
func (r *ReplicaMap) Register(ck ChunkID, bases ...rdma.Addr) {
	for i, b := range bases {
		if b.MS() == ck.MS {
			panic(fmt.Sprintf("alloc: replica of chunk (%d,%d) placed on its own server", ck.MS, ck.Index))
		}
		for _, o := range bases[:i] {
			if o.MS() == b.MS() {
				panic(fmt.Sprintf("alloc: two replicas of chunk (%d,%d) on server %d", ck.MS, ck.Index, b.MS()))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := (*r.m.Load())[ck]; ok {
		panic(fmt.Sprintf("alloc: chunk (%d,%d) already registered", ck.MS, ck.Index))
	}
	r.swap(func(m map[ChunkID]*replicaSet) {
		m[ck] = newSet(bases...)
	})
	r.registered.Add(1)
}

// AddReplica attaches one more, already-complete replica copy: base's chunk
// holds a full copy of ck as of applied watermark appliedV, and mirrors of
// later writes will keep it close. Use only when nothing wrote ck during
// the copy (quiesced tests); the live re-replication path is
// AddPendingReplica → CopyChunk → CompleteReplica.
func (r *ReplicaMap) AddReplica(ck ChunkID, base rdma.Addr, appliedV int64) {
	r.addReplica(ck, base, appliedV, false)
}

// AddPendingReplica attaches base's chunk as a new mirror target of ck whose
// bulk backfill has not run yet: every write committed from now on reaches
// it as a mirror (so the backfill misses nothing), but promotion treats it
// as a last resort until CompleteReplica. Returns false when ck is not a
// registered primary — a concurrent failover re-keyed it — or the set is
// full; the re-replicator then skips the chunk.
func (r *ReplicaMap) AddPendingReplica(ck ChunkID, base rdma.Addr) bool {
	return r.addReplica(ck, base, 0, true)
}

func (r *ReplicaMap) addReplica(ck ChunkID, base rdma.Addr, appliedV int64, pending bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := (*r.m.Load())[ck]
	if !ok {
		if pending {
			return false
		}
		old = &replicaSet{}
	}
	if old.n >= MaxReplicas {
		if pending {
			return false
		}
		panic(fmt.Sprintf("alloc: chunk (%d,%d) already at MaxReplicas", ck.MS, ck.Index))
	}
	if base.MS() == ck.MS {
		panic(fmt.Sprintf("alloc: replica of chunk (%d,%d) placed on its own server", ck.MS, ck.Index))
	}
	s := &replicaSet{n: old.n + 1}
	s.bases, s.applied, s.pending = old.bases, old.applied, old.pending
	s.bases[old.n] = base
	w := new(atomic.Int64)
	w.Store(appliedV)
	s.applied[old.n] = w
	if pending {
		p := new(atomic.Bool)
		p.Store(true)
		s.pending[old.n] = p
	}
	r.swap(func(m map[ChunkID]*replicaSet) {
		m[ck] = s
	})
	return true
}

// Drop unregisters primary chunk ck, discarding its replica set. Only for
// chunks no node was ever carved from — an allocator abandoning a chunk
// whose server died during the growth RPC (after the failover sweep ran, so
// nothing else will ever clean the entry). No-op when ck is absent.
func (r *ReplicaMap) Drop(ck ChunkID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := (*r.m.Load())[ck]; !ok {
		return
	}
	r.swap(func(m map[ChunkID]*replicaSet) {
		delete(m, ck)
	})
	r.registered.Add(-1)
}

// CompleteReplica marks base's copy of ck as fully backfilled, making it a
// first-class failover candidate. No-op when ck was re-keyed by a racing
// failover or base is no longer in its set.
func (r *ReplicaMap) CompleteReplica(ck ChunkID, base rdma.Addr) {
	if s, ok := (*r.m.Load())[ck]; ok {
		for i := 0; i < s.n; i++ {
			if s.bases[i] == base && s.pending[i] != nil {
				s.pending[i].Store(false)
				return
			}
		}
	}
}

// FailoverServer removes dead server ms from the placement table: every
// chunk whose primary lived on ms is promoted to its freshest live replica
// (returned for forwarding installation), and every replica copy hosted on
// ms is dropped from its set. aliveMS reports whether a server is still
// live. Chunks whose primary died with no live replica are dropped and
// counted as lost.
func (r *ReplicaMap) FailoverServer(ms uint16, aliveMS func(int) bool) []Promotion {
	r.mu.Lock()
	defer r.mu.Unlock()
	var promoted []Promotion
	r.swap(func(m map[ChunkID]*replicaSet) {
		for ck, s := range m {
			if ck.MS == ms {
				// Primary died: promote the freshest live replica. A replica
				// still backfilling (pending) holds only recent mirrors, so
				// any complete replica beats it regardless of watermark.
				best, bestV, bestComplete := -1, int64(-1), false
				for i := 0; i < s.n; i++ {
					if !aliveMS(int(s.bases[i].MS())) {
						continue
					}
					c, v := s.complete(i), s.applied[i].Load()
					if best < 0 || (c && !bestComplete) || (c == bestComplete && v > bestV) {
						best, bestV, bestComplete = i, v, c
					}
				}
				delete(m, ck)
				if best < 0 {
					r.lost.Add(1)
					continue
				}
				next := &replicaSet{}
				for i := 0; i < s.n; i++ {
					if i == best || !aliveMS(int(s.bases[i].MS())) {
						continue
					}
					next.bases[next.n] = s.bases[i]
					next.applied[next.n] = s.applied[i]
					next.pending[next.n] = s.pending[i]
					next.n++
				}
				m[ChunkOf(s.bases[best])] = next
				promoted = append(promoted, Promotion{
					Old:      ck,
					NewBase:  s.bases[best],
					AppliedV: bestV,
				})
				r.promotions.Add(1)
				continue
			}
			// Primary lives elsewhere: shed any copy hosted on ms.
			drop := 0
			for i := 0; i < s.n; i++ {
				if s.bases[i].MS() == ms {
					drop++
				}
			}
			if drop == 0 {
				continue
			}
			next := &replicaSet{}
			for i := 0; i < s.n; i++ {
				if s.bases[i].MS() == ms {
					continue
				}
				next.bases[next.n] = s.bases[i]
				next.applied[next.n] = s.applied[i]
				next.pending[next.n] = s.pending[i]
				next.n++
			}
			m[ck] = next
			r.dropped.Add(int64(drop))
		}
	})
	return promoted
}

// UnderReplicated lists primary chunks carrying fewer than want-1 complete
// replica copies — the background re-replicator's work queue. A pending
// replica does not count (its backfill may have been abandoned by a crashed
// re-replicator), so the queue self-heals. Deterministic order (by server,
// then chunk index) so paced sweeps are reproducible.
func (r *ReplicaMap) UnderReplicated(want int) []ChunkID {
	var out []ChunkID
	for ck, s := range *r.m.Load() {
		n := 0
		for i := 0; i < s.n; i++ {
			if s.complete(i) {
				n++
			}
		}
		if n < want-1 {
			out = append(out, ck)
		}
	}
	sortChunks(out)
	return out
}

func sortChunks(cks []ChunkID) {
	for i := 1; i < len(cks); i++ {
		for j := i; j > 0 && chunkLess(cks[j], cks[j-1]); j-- {
			cks[j], cks[j-1] = cks[j-1], cks[j]
		}
	}
}

func chunkLess(a, b ChunkID) bool {
	if a.MS != b.MS {
		return a.MS < b.MS
	}
	return a.Index < b.Index
}

// Holders fills out with the servers currently hosting a copy of ck
// (primary first) and returns the count — the set a re-replication target
// picker must avoid.
func (r *ReplicaMap) Holders(ck ChunkID, out *[MaxReplicationFactor]uint16) int {
	out[0] = ck.MS
	n := 1
	if s, ok := (*r.m.Load())[ck]; ok {
		for i := 0; i < s.n; i++ {
			out[n] = s.bases[i].MS()
			n++
		}
	}
	return n
}

// Len returns the number of registered primary chunks.
func (r *ReplicaMap) Len() int { return len(*r.m.Load()) }

// Promotions returns the lifetime count of replica promotions (failovers).
func (r *ReplicaMap) Promotions() int64 { return r.promotions.Load() }

// DroppedReplicas returns replica copies dropped with their dead servers.
func (r *ReplicaMap) DroppedReplicas() int64 { return r.dropped.Load() }

// Lost returns chunks whose primary died with no live replica to promote.
func (r *ReplicaMap) Lost() int64 { return r.lost.Load() }
