// Package workload generates YCSB-style key-value workloads (§5.1.3): five
// operation mixes over uniform or Zipfian key popularity, with the standard
// scrambled-Zipfian construction so that popular keys scatter across the key
// space rather than clustering in one B+Tree leaf.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Op is one generated index operation.
type Op struct {
	Kind  Kind
	Key   uint64
	Value uint64
	// Span is the requested result count for range queries.
	Span int
	// RMW marks an Insert as read-modify-write (YCSB F): the driver reads
	// the key before writing it.
	RMW bool
}

// Kind enumerates operation types.
type Kind int

// Operation types. Insert covers both inserting new keys and updating
// existing ones (the paper folds updates into "insert": §1 footnote 1, and
// ~2/3 of insert operations update existing keys, §5.1.3).
const (
	Lookup Kind = iota
	Insert
	Delete
	Range
)

// String names the kind.
func (k Kind) String() string {
	return [...]string{"lookup", "insert", "delete", "range"}[k]
}

// Mix is an operation mix in percent; fields must sum to 100.
type Mix struct {
	LookupPct int
	InsertPct int
	DeletePct int
	RangePct  int
}

// The five mixes of Table 3.
var (
	ReadOnly       = Mix{LookupPct: 100}
	WriteOnly      = Mix{InsertPct: 100}
	WriteIntensive = Mix{LookupPct: 50, InsertPct: 50}
	ReadIntensive  = Mix{LookupPct: 95, InsertPct: 5}
	RangeOnly      = Mix{RangePct: 100}
	RangeWrite     = Mix{InsertPct: 50, RangePct: 50}
)

// Validate checks that the mix sums to 100%.
func (m Mix) Validate() error {
	if s := m.LookupPct + m.InsertPct + m.DeletePct + m.RangePct; s != 100 {
		return fmt.Errorf("workload: mix sums to %d%%, want 100%%", s)
	}
	return nil
}

// Dist selects the key-popularity distribution.
type Dist int

// Key popularity distributions.
const (
	// Uniform gives all keys equal probability.
	Uniform Dist = iota
	// Zipfian draws ranks from a Zipf distribution and scrambles them over
	// the key space (YCSB's ScrambledZipfian).
	Zipfian
)

// Config describes one workload.
type Config struct {
	Mix Mix
	// Keys is the key-space size; generated keys are in [1, Keys] (key 0 is
	// reserved as the tree's empty sentinel).
	Keys uint64
	Dist Dist
	// Theta is the Zipfian skewness (0.99 in the paper's skewed runs).
	Theta float64
	// RangeSpan is the result count of range queries (100 or 1000 in
	// Figure 12).
	RangeSpan int
	// UpdateFraction is the share of Insert operations that target existing
	// (bulkloaded) keys rather than new ones; the paper uses about 2/3.
	UpdateFraction float64
	// LoadedFraction is the share of the key space that was bulkloaded (the
	// paper loads trees 80% full).
	LoadedFraction float64

	// Latest biases lookups toward the most recently inserted region (the
	// unloaded tail that fresh inserts fill) — YCSB workload D's "read
	// latest" pattern.
	Latest bool

	// ReadModifyWrite marks Insert operations as read-modify-write (YCSB
	// F): drivers issue a Lookup for the key before the Insert.
	ReadModifyWrite bool
}

// DefaultConfig fills in the paper's defaults for the given mix and
// distribution.
func DefaultConfig(mix Mix, dist Dist, keys uint64) Config {
	return Config{
		Mix:            mix,
		Keys:           keys,
		Dist:           dist,
		Theta:          0.99,
		RangeSpan:      100,
		UpdateFraction: 2.0 / 3.0,
		LoadedFraction: 0.8,
	}
}

// Generator produces operations for one client thread. It is not safe for
// concurrent use; create one per thread with distinct seeds.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *ZipfGen
	cum  [4]int
}

// NewGenerator builds a thread-local generator. Generators sharing a Config
// may share the (immutable after construction) Zipf tables via NewGeneratorFrom.
func NewGenerator(cfg Config, seed uint64) *Generator {
	if err := cfg.Mix.Validate(); err != nil {
		panic(err)
	}
	if cfg.Keys == 0 {
		panic("workload: empty key space")
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
	if cfg.Dist == Zipfian {
		g.zipf = NewZipfGen(cfg.Keys, cfg.Theta)
	}
	g.cum[0] = cfg.Mix.LookupPct
	g.cum[1] = g.cum[0] + cfg.Mix.InsertPct
	g.cum[2] = g.cum[1] + cfg.Mix.DeletePct
	g.cum[3] = g.cum[2] + cfg.Mix.RangePct
	return g
}

// NewGeneratorFrom builds a generator that shares base's Zipf tables
// (computing zeta once per experiment instead of once per thread).
func NewGeneratorFrom(base *Generator, seed uint64) *Generator {
	g := &Generator{
		cfg:  base.cfg,
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		zipf: base.zipf,
		cum:  base.cum,
	}
	return g
}

// NextKey draws one key in [1, Keys] from the configured distribution.
func (g *Generator) NextKey() uint64 {
	if g.zipf != nil {
		rank := g.zipf.Next(g.rng)
		return scramble(rank, g.cfg.Keys)
	}
	return g.rng.Uint64N(g.cfg.Keys) + 1
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	p := int(g.rng.Uint64N(100))
	var kind Kind
	switch {
	case p < g.cum[0]:
		kind = Lookup
	case p < g.cum[1]:
		kind = Insert
	case p < g.cum[2]:
		kind = Delete
	default:
		kind = Range
	}
	op := Op{Kind: kind, Key: g.NextKey()}
	switch kind {
	case Lookup:
		if g.cfg.Latest && g.rng.Float64() < 0.5 {
			// YCSB-D: half the reads chase the freshest records, which
			// live in the unloaded tail that inserts fill.
			op.Key = g.freshKey(op.Key)
		}
	case Insert:
		op.Value = g.rng.Uint64()
		if op.Value == 0 {
			op.Value = 1
		}
		if g.rng.Float64() >= g.cfg.UpdateFraction {
			// An insert of a (probably) new key: draw from the unloaded
			// 20% tail of each key's hash bucket by flipping high bits.
			op.Key = g.freshKey(op.Key)
		}
		op.RMW = g.cfg.ReadModifyWrite
	case Range:
		op.Span = g.cfg.RangeSpan
	}
	return op
}

// NextBatch returns the next n operations as one batch — the YCSB-style
// batched-client pattern where a client submits a group of operations at
// once and the driver hands same-kind runs to the index's batch entry
// points.
func (g *Generator) NextBatch(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

// freshKey maps a drawn key to a likely-unloaded key deterministically so
// repeated inserts still contend realistically.
func (g *Generator) freshKey(k uint64) uint64 {
	loaded := uint64(float64(g.cfg.Keys) * g.cfg.LoadedFraction)
	if loaded >= g.cfg.Keys {
		return k
	}
	return loaded + 1 + (mix64(k) % (g.cfg.Keys - loaded))
}

// LoadedKeys returns the number of keys a harness should bulkload for this
// config (keys 1..LoadedKeys).
func (c Config) LoadedKeys() uint64 {
	n := uint64(float64(c.Keys) * c.LoadedFraction)
	if n == 0 {
		n = 1
	}
	return n
}

// scramble spreads Zipf rank r (0-based; rank 0 is the hottest) over
// [1, keys] with an FNV-style hash, as YCSB's ScrambledZipfian does.
func scramble(r, keys uint64) uint64 {
	return mix64(r)%keys + 1
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ZipfGen draws 0-based ranks with P(rank=k) proportional to 1/(k+1)^theta,
// using Gray et al.'s rejection-free method as in YCSB. Construction costs
// O(n) for exact zeta below zetaExactLimit and uses the standard closed-form
// approximation above it (so billion-key spaces are cheap).
type ZipfGen struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // zeta(2, theta)
}

const zetaExactLimit = 1 << 24

// NewZipfGen builds the generator for ranks [0, n).
func NewZipfGen(n uint64, theta float64) *ZipfGen {
	if n == 0 {
		panic("workload: zipf over empty domain")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipf theta %v outside (0,1)", theta))
	}
	z := &ZipfGen{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.half = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.half/z.zetan)
	return z
}

// Next draws one rank.
func (z *ZipfGen) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// zeta computes the generalized harmonic number H_{n,theta}, exactly for
// small n and via the integral approximation for large n (the error is far
// below the simulator's fidelity).
func zeta(n uint64, theta float64) float64 {
	if n <= zetaExactLimit {
		var s float64
		for i := uint64(1); i <= n; i++ {
			s += 1 / math.Pow(float64(i), theta)
		}
		return s
	}
	base := zeta(zetaExactLimit, theta)
	// Integral of x^-theta from zetaExactLimit to n.
	a := 1 - theta
	return base + (math.Pow(float64(n), a)-math.Pow(float64(zetaExactLimit), a))/a
}
