package core

import (
	"sync/atomic"

	"sherman/internal/alloc"
	"sherman/internal/cache"
	"sherman/internal/cluster"
	"sherman/internal/layout"
	"sherman/internal/rdma"
	"sherman/internal/stats"
	"sherman/internal/transport"
)

// Handle is one client thread's interface to the tree. Handles are not safe
// for concurrent use; create one per goroutine.
type Handle struct {
	t     *Tree
	C     transport.Transport
	alloc *alloc.ThreadAllocator
	cache *cache.Cache

	// Flat views of the transport, cached at creation so the hot path pays
	// no repeated interface calls: m is the verb-counter block (stable
	// pointer), tm the cost-constant snapshot, vt the virtual-time
	// capability (nil on real transports — every use degrades gracefully),
	// fwd/rep the backend's migration and replication state.
	m   *transport.Metrics
	tm  transport.Timing
	vt  transport.VirtualTimer
	av  transport.AsyncVerbs
	fwd *alloc.Forwarding
	rep *alloc.ReplicaMap

	// Rec accumulates this thread's measurements.
	Rec *stats.Recorder

	// Pace, when non-nil, is called between the leaf groups of a batch —
	// points where no lock is held — with the handle's current virtual
	// time. The bench harness uses it to keep worker clocks inside the
	// simulation gate's window even across long batches; without it a
	// batch-issuing thread drifts far ahead in virtual time and drags lock
	// timelines with it, billing paced threads phantom spin storms.
	Pace func(nowNS int64)

	// Reusable node buffers (verbs copy synchronously, so reuse is safe).
	leafBuf []byte
	nodeBuf []byte

	// arena backs the remaining per-operation buffers — split siblings, new
	// roots, deferred write-back copies, scan read buffers — reset at each
	// top-level operation (see arena.go for the ownership rule).
	arena arena

	// wops is the write-op scratch behind every combined write-back+release
	// doorbell; relWops backs release-only unlocks (the two can be live at
	// once: a batch group's pending list while a nested seek move-right
	// releases a freshly-probed lock). Both are handed to hocl with spare
	// capacity so appending the release op never reallocates.
	wops    []rdma.WriteOp
	relWops []rdma.WriteOp

	// seg is the batch planner's segment scratch; kvs the sorted-entries
	// scratch of splits and scans; scanAddrs/scanReqs/scanBufs the parallel-
	// read scratch of range scans. All recycle across operations.
	seg       []planOp
	kvs       []layout.KV
	scanAddrs []rdma.Addr
	scanReqs  []rdma.ReadOp
	scanBufs  [][]byte

	// Mirror engine scratch (see mirror.go). replicated caches Rep != nil;
	// repWops/repMarks are the replica write ops of the current doorbell
	// group with their per-replica watermark cells; repTargets is the
	// per-chunk target snapshot; oneWop adapts single-write call sites to the
	// group path; repLo/repHi frame the per-MS group mirrorFn posts (bound
	// once at handle creation so OnTimeline takes no per-op closure);
	// mirrorEndV is the latest mirror completion awaiting a lag sample.
	replicated bool
	repWops    []rdma.WriteOp
	repMarks   []*atomic.Int64
	repPends   []transport.Pending
	repTargets alloc.TargetSet
	oneWop     [1]rdma.WriteOp
	repLo      int
	repHi      int
	mirrorEndV int64
	mirrorFn   func()
	// redo is raised by mirror when a write-back's chunk was re-keyed by a
	// concurrent failover (its server died after the validating read): the
	// primary write vanished into dead memory and no replica was mirrored, so
	// the op must retry through the promoted chunk before acking.
	redo bool

	// ex frames the batch planner's current unit: the read/write/scan unit
	// bodies are methods reading these fields, with their func values bound
	// once at creation, so the planner passes no per-unit closure through
	// the VirtualTimer interface (same trick as mirrorFn — an escaping
	// closure would cost a heap allocation per leaf group; see the alloc
	// gate).
	ex struct {
		ops           []planOp
		results       []OpResult
		op            Op
		res           *OpResult
		elapsed       int64
		i             int
		start         int
		sameLeafWrite bool
		scanFn        func()
		readFn        func()
		writeFn       func()
	}

	// poison mirrors Config.Poison: recycled scratch is filled with 0xDB so
	// reuse-after-release reads deterministic garbage.
	poison bool
}

// NewHandle creates a handle on compute server cs. seed staggers the
// allocator's round-robin start.
func (t *Tree) NewHandle(cs int, seed int) *Handle {
	c := t.cl.NewTransport(cs)
	h := &Handle{
		t:       t,
		C:       c,
		alloc:   t.cl.NewThreadAllocator(c, seed),
		cache:   t.caches[cs],
		Rec:     stats.NewRecorder(),
		leafBuf: make([]byte, t.cfg.Format.NodeSize),
		nodeBuf: make([]byte, t.cfg.Format.NodeSize),
		wops:    make([]rdma.WriteOp, 0, 8),
		relWops: make([]rdma.WriteOp, 0, 1),
		poison:  t.cfg.Poison,
	}
	h.m = c.Metrics()
	h.tm = c.Timing()
	h.vt, _ = c.(transport.VirtualTimer)
	h.av, _ = c.(transport.AsyncVerbs)
	h.ex.scanFn = h.execScanBody
	h.ex.readFn = h.execReadGroupBody
	h.ex.writeFn = h.execWriteGroupBody
	h.fwd = t.cl.Forwarding()
	h.arena.poison = t.cfg.Poison
	if rep := t.cl.Replicas(); rep != nil {
		h.replicated = true
		h.rep = rep
		h.repWops = make([]rdma.WriteOp, 0, 8)
		h.repMarks = make([]*atomic.Int64, 0, 8)
		h.mirrorFn = h.postMirrorGroup
	}
	return h
}

// onTimeline runs fn on a detached timeline starting at start and returns
// the completion time — the virtual-time overlap trick of the pipelined
// executor and the mirror engine. On a real transport there is no timeline
// to detach: fn just runs, and "completion" is the wall clock afterwards.
func (h *Handle) onTimeline(start int64, fn func()) int64 {
	if h.vt == nil {
		fn()
		return h.C.Now()
	}
	return h.vt.OnTimeline(start, fn)
}

// SetClock forces the thread's clock to v on a virtual transport; real
// clocks cannot be set and the call is a no-op.
func (h *Handle) SetClock(v int64) {
	if h.vt != nil {
		h.vt.SetClock(v)
	}
}

// Metrics exposes the thread's verb counters.
func (h *Handle) Metrics() *transport.Metrics { return h.m }

// Timing exposes the transport's cost-constant snapshot.
func (h *Handle) Timing() transport.Timing { return h.tm }

// takeWops returns the emptied write-op scratch for one combined doorbell.
// The slice is dead once unlockWrite returns; keepWops recycles any growth.
func (h *Handle) takeWops() []rdma.WriteOp { return h.wops[:0] }

// keepWops retains w's backing array (appends may have outgrown the original
// scratch) and, in poison mode, clears the recycled entries so a retained
// WriteOp reads zeroes instead of a plausible stale write.
func (h *Handle) keepWops(w []rdma.WriteOp) {
	if h.poison {
		clear(w)
	}
	h.wops = w[:0]
}

// growForRelease guarantees one spare capacity slot so hocl's combined
// release append stays in place — the combined doorbell then posts from this
// very backing array with zero further allocation.
func growForRelease(w []rdma.WriteOp) []rdma.WriteOp {
	if len(w) < cap(w) {
		return w
	}
	nw := make([]rdma.WriteOp, len(w), 2*cap(w)+4)
	copy(nw, w)
	return nw
}

// Tree returns the handle's tree.
func (h *Handle) Tree() *Tree { return h.t }

// Cache returns the compute server's unified index cache.
func (h *Handle) Cache() *cache.Cache { return h.cache }

// --- read-side machinery ----------------------------------------------------

// readNode fetches the node at a into buf, retrying until the node-level
// consistency check passes (version pair or checksum) and the wraparound
// guard is satisfied (§4.4: a read taking longer than 8 us could straddle a
// full 4-bit version cycle and must retry). Returns the view and the number
// of retries performed.
func (h *Handle) readNode(a rdma.Addr, buf []byte) (layout.Node, int) {
	retries := 0
	wrap := 0
	for {
		start := h.C.Now()
		h.C.Read(a, buf)
		n := layout.ViewNode(h.t.cfg.Format, buf)
		if !n.Consistent() {
			if !h.C.MSAlive(int(a.MS())) {
				// Dead memory zero-fills, so no retry will ever read a
				// consistent checksum. Return the zeroed view: it fails the
				// caller's Alive check, which chases to the promoted replica.
				// (A zeroed two-level node is version-consistent and exits
				// above on its own.)
				return n, retries
			}
			retries++
			continue
		}
		// A zero guard disables the heuristic (real clocks never re-read the
		// same 4-bit version within a wrap window).
		if h.t.cfg.Format.Mode == layout.TwoLevel && h.tm.WraparoundGuardNS > 0 &&
			h.C.Now()-start > h.tm.WraparoundGuardNS && wrap < h.t.cfg.maxWrapRetries() {
			wrap++
			retries++
			continue
		}
		return n, retries
	}
}

// refreshRoot re-reads the superblock and updates the CS's cache root. The
// superblock's level field is only a hint — the pointer CAS and the hint
// write are separate verbs, and a client can crash between them — so the
// authoritative level comes from the fetched root node itself (readers
// validate node levels everywhere else for the same reason).
func (h *Handle) refreshRoot() (rdma.Addr, uint8) {
	for {
		root, _ := cluster.ReadRoot(h.C)
		n, _ := h.readNode(root, h.nodeBuf)
		if !n.Alive() {
			// The root node migrated but the superblock pointer is not yet
			// repointed: its relocated copy is the root. Without the chase a
			// reader would spin here until the migrator's CAS lands.
			if fwd, ok := h.chase(root); ok {
				root = fwd
				n, _ = h.readNode(root, h.nodeBuf)
			}
		}
		if n.Alive() {
			level := n.Level()
			h.cache.SetRoot(root, level)
			if level > 0 {
				h.cacheInternal(root, n, level)
			}
			return root, level
		}
		// The pointed-to node was freed under us (root moved); re-read.
	}
}

// cacheInternal copies an internal node into the unified cache; admission
// (pinned top levels, budgeted depth, frequency gate) is the cache's call.
// rootLevel is the level of the current traversal's root, which defines the
// pinned region. The structural pre-check avoids paying a node-size copy
// for levels the cache could never hold (mid-tree levels above the
// budgeted depth, or everything budgeted when the cache is off).
func (h *Handle) cacheInternal(a rdma.Addr, n layout.Node, rootLevel uint8) {
	if !h.cache.Admissible(n.Level(), rootLevel) {
		return
	}
	cp := append([]byte(nil), n.B...)
	h.cache.Insert(a, layout.AsInternal(layout.ViewNode(n.F, cp)), rootLevel)
}

// cacheNode is cacheInternal against the cache's current notion of the root
// level, for call sites outside a descent (split refreshes, repoints).
func (h *Handle) cacheNode(a rdma.Addr, n layout.Node) {
	_, rootLvl := h.cache.Root()
	h.cacheInternal(a, n, rootLvl)
}

// maxSiblingHops is the level-0 B-link walk length that signals stale
// pinned-top steering: a copy of a since-split top node passes fence/level
// validation (its fences were right when taken) yet steers every traversal
// left of the target, and only excess sibling hops reveal it.
const maxSiblingHops = 3

// noteSiblingHop counts one level-0 move-right and flushes the pinned top
// entries when the walk gets long enough to implicate stale steering.
func (h *Handle) noteSiblingHop(hops *int) {
	*hops++
	if *hops == maxSiblingHops {
		h.cache.FlushTop()
	}
}

// Lookup returns the value stored under key.
func (h *Handle) Lookup(key uint64) (uint64, bool) {
	h.m.BeginOp()
	t0 := h.C.Now()
	val, found := h.lookupInner(key)
	h.Rec.RecordOp(stats.OpLookup, h.C.Now()-t0)
	return val, found
}

func (h *Handle) lookupInner(key uint64) (uint64, bool) {
	retries := 0
	hops := 0
	defer func() { h.Rec.ReadRetries.Record(retries) }()
	addr, ce := h.locateLeaf(key)
	for {
		r, ok := h.seek(key, 0, intentRead, addr, ce, h.leafBuf, &retries, &hops)
		if !ok {
			return 0, false // the sibling walk ran off the right edge
		}
		leaf := layout.AsLeaf(r.n)
		h.C.Step(h.tm.LocalStepNS) // scan the (unsorted) leaf locally
		i, found := leaf.Find(key)
		if !found {
			return 0, false
		}
		if h.t.cfg.Format.Mode == layout.TwoLevel && !leaf.EntryConsistent(i) {
			// Entry-level check failed: re-read the leaf (§4.4).
			retries++
			addr, ce = r.addr, nil
			continue
		}
		return leaf.Value(i), true
	}
}
