// Package sherman is a from-scratch Go reproduction of Sherman, the
// write-optimized distributed B+Tree index on disaggregated memory from
// SIGMOD 2022 (Qing Wang, Youyou Lu, Jiwu Shu; arXiv:2112.07320).
//
// # Architecture
//
// A Sherman deployment separates compute from memory: memory servers (MSs)
// host the tree in high-volume DRAM behind RDMA NICs and have near-zero
// compute; compute servers (CSs) run many client threads that manipulate the
// tree purely with one-sided RDMA verbs (READ, WRITE, CAS, masked CAS). No
// RDMA hardware is required here: the fabric is simulated with a virtual-time
// model calibrated to the paper's 100 Gbps ConnectX-5 testbed, while every
// data-path operation really executes against shared memory with
// cacheline-granular torn reads — so the index's consistency machinery is
// genuinely exercised. See DESIGN.md for the model.
//
// Three techniques give Sherman its write performance:
//
//   - Command combination (§4.5): dependent RDMA_WRITEs (node write-back,
//     lock release) post as one doorbell batch on an RC queue pair, whose
//     in-order delivery makes the acknowledgement of the first redundant.
//   - Hierarchical on-chip locks (§4.3): global lock tables live in NIC
//     on-chip memory (no PCIe transactions), and per-CS local lock tables
//     with FIFO wait queues and bounded lock handover eliminate remote retry
//     storms.
//   - Two-level versions (§4.4): unsorted leaves whose entries carry their
//     own 4-bit version pairs, so a non-structural insert or delete writes
//     back one ~18-byte entry instead of a 1 KB node.
//
// # Usage
//
// Open a simulated cluster, create a tree, then open one Session per worker
// goroutine:
//
//	cluster, err := sherman.NewCluster(sherman.ClusterConfig{MemoryServers: 8, ComputeServers: 8})
//	tree, err := cluster.CreateTree(sherman.DefaultTreeOptions())
//	s := tree.Session(0)
//	s.Put(42, 1000)
//	v, ok := s.Get(42)
//	kvs := s.Scan(40, 10)
//
// Bulk work goes through the batch planner — observably equivalent to the
// same operations applied in order, but amortizing traversals, leaf locks
// and doorbells across operations that share a leaf:
//
//	s.PutBatch([]sherman.KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}})
//	vals, found := s.GetBatch([]uint64{1, 2, 3})
//	deleted := s.DeleteBatch([]uint64{1, 3})
//
// The unified Op/Result API pipelines operations the way the paper's
// clients run multiple coroutines per thread to hide round-trip latency: a
// session opened with a pipeline depth keeps that many operations
// outstanding, overlapping their round trips while preserving sequential
// semantics (same-key operations never reorder), and reports typed errors
// (ErrReservedKey, ErrBadComputeServer) instead of panicking:
//
//	s, err := tree.SessionAt(0, sherman.PipelineDepth(4))
//	f := s.Submit(sherman.PutOp(42, 1000))
//	r := s.Submit(sherman.GetOp(42)).Wait() // sees the put
//	results := s.Exec([]sherman.Op{sherman.PutOp(1, 10), sherman.GetOp(2)})
//	s.Flush()
//
// Sessions are deliberately single-goroutine (they model one client thread of
// the paper); open as many as you like across compute servers.
//
// The same engine, reconfigured via TreeOptions, is the FG+ baseline the
// paper compares against, which makes the ablation studies of §5 a matter of
// flipping options.
package sherman
