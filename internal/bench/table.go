package bench

import (
	"fmt"
	"strings"
)

// Table is a printable result table for one experiment.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted cells.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
