package cache

import (
	"fmt"
	"sync"
	"testing"

	"sherman/internal/alloc"
	"sherman/internal/layout"
	"sherman/internal/rdma"
)

var testFormat = layout.DefaultFormat(layout.TwoLevel)

// mkNode builds an internal node copy at the given level covering
// [lower, upper).
func mkNodeAt(level uint8, lower, upper uint64) layout.Internal {
	n := layout.NewInternal(testFormat, level, lower, upper)
	n.SetLeftmost(rdma.MakeAddr(0, lower+64))
	return n
}

// mkNode builds a level-1 node (the common case across these tests).
func mkNode(lower, upper uint64) layout.Internal { return mkNodeAt(1, lower, upper) }

func addr(i uint64) rdma.Addr { return rdma.MakeAddr(0, 0x10000+i*1024) }

// flat builds a level-1-only cache (the paper's flat type-1 configuration)
// holding limit entries.
func flat(limit int) *Cache {
	return New(Config{MaxBytes: int64(limit * testFormat.NodeSize), NodeSize: testFormat.NodeSize, Levels: 1})
}

// insist inserts until admitted (the frequency gate may turn the first
// attempt away under level pressure, exactly like a repeated traversal).
func insist(c *Cache, a rdma.Addr, n layout.Internal) {
	for i := 0; i < 3; i++ {
		c.Insert(a, n, 0)
		if e := c.sl[n.Level()].floor(n.LowerFence()); e != nil && e.Addr == a {
			return
		}
	}
}

func TestLookupHitAndMiss(t *testing.T) {
	c := flat(1024)
	c.Insert(addr(1), mkNode(100, 200), 0)
	c.Insert(addr(2), mkNode(200, 300), 0)

	for _, tc := range []struct {
		key  uint64
		want rdma.Addr
		hit  bool
	}{
		{100, addr(1), true},
		{150, addr(1), true},
		{199, addr(1), true},
		{200, addr(2), true},
		{299, addr(2), true},
		{99, 0, false},  // below every cached range
		{300, 0, false}, // above every cached range
	} {
		e := c.Lookup(tc.key, 1)
		if tc.hit {
			if e == nil {
				t.Errorf("Lookup(%d) = miss, want hit on %v", tc.key, tc.want)
				continue
			}
			if e.Addr != tc.want {
				t.Errorf("Lookup(%d) = %v, want %v", tc.key, e.Addr, tc.want)
			}
		} else if e != nil {
			t.Errorf("Lookup(%d) = hit on %v, want miss", tc.key, e.Addr)
		}
	}
	if c.Hits() == 0 || c.Misses() == 0 {
		t.Errorf("counters: hits=%d misses=%d, both should be nonzero", c.Hits(), c.Misses())
	}
}

// TestLookupGapMiss: a key between two cached nodes' ranges (not covered by
// the floor node's fences) must miss rather than steer wrongly.
func TestLookupGapMiss(t *testing.T) {
	c := flat(1024)
	c.Insert(addr(1), mkNode(100, 200), 0)
	c.Insert(addr(3), mkNode(500, 600), 0)
	if e := c.Lookup(350, 1); e != nil {
		t.Errorf("Lookup(350) in coverage gap = hit on %v, want miss", e.Addr)
	}
}

func TestInsertReplacesSameFence(t *testing.T) {
	c := flat(1024)
	c.Insert(addr(1), mkNode(100, 200), 0)
	// A split shrank the node: replace the copy at the same lower fence.
	c.Insert(addr(1), mkNode(100, 150), 0)
	e := c.Lookup(160, 1)
	if e != nil {
		t.Errorf("Lookup(160) after shrink = hit on %v, want miss", e.Addr)
	}
	if got := c.Len(); got != 1 {
		t.Errorf("Len = %d, want 1 (replaced, not duplicated)", got)
	}
}

// TestLevelsAreIndependent: entries at different tree levels live in
// separate per-level maps; a level-2 entry never answers a level-1 lookup.
func TestLevelsAreIndependent(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, NodeSize: testFormat.NodeSize, Levels: 3})
	c.Insert(addr(1), mkNodeAt(1, 100, 200), 0)
	c.Insert(addr(2), mkNodeAt(2, 0, 1000), 0)
	if e := c.Lookup(150, 1); e == nil || e.Addr != addr(1) {
		t.Fatal("level-1 lookup broken")
	}
	if e := c.Lookup(150, 2); e == nil || e.Addr != addr(2) {
		t.Fatal("level-2 lookup broken")
	}
	if e := c.Lookup(500, 1); e != nil {
		t.Errorf("level-1 lookup answered by a level-2 range: %v", e.Addr)
	}
}

// TestDeepest returns the lowest-level covering entry — the point a
// traversal resumes from.
func TestDeepest(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, NodeSize: testFormat.NodeSize, Levels: 3})
	c.Insert(addr(2), mkNodeAt(2, 0, 1000), 0)
	c.Insert(addr(3), mkNodeAt(3, 0, layout.NoUpperBound), 0)
	if e := c.Deepest(500, 1, 5); e == nil || e.Level() != 2 {
		t.Fatalf("Deepest(500) = %+v, want the level-2 entry", e)
	}
	c.Insert(addr(1), mkNodeAt(1, 400, 600), 0)
	if e := c.Deepest(500, 1, 5); e == nil || e.Level() != 1 {
		t.Fatalf("Deepest(500) after level-1 insert = %+v, want level 1", e)
	}
	// Below the lo bound the deeper entry is skipped.
	if e := c.Deepest(500, 2, 5); e == nil || e.Level() != 2 {
		t.Fatalf("Deepest(500, lo=2) = %+v, want level 2", e)
	}
	if e := c.Deepest(5000, 1, 5); e == nil || e.Level() != 3 {
		t.Fatalf("Deepest(5000) = %+v, want the level-3 root entry", e)
	}
}

// TestPinnedTopLevels: nodes at rootLevel-1 and above are admitted
// unconditionally, never evicted, and ride outside the budget; a root
// change flushes them.
func TestPinnedTopLevels(t *testing.T) {
	c := New(Config{MaxBytes: 1, NodeSize: testFormat.NodeSize, Levels: 1}) // budget: 1 entry
	c.SetRoot(addr(100), 3)
	c.Insert(addr(100), mkNodeAt(3, 0, layout.NoUpperBound), 3)
	c.Insert(addr(101), mkNodeAt(2, 0, 1000), 3)
	if c.PinnedLen() != 2 {
		t.Fatalf("PinnedLen = %d, want 2", c.PinnedLen())
	}
	if c.Len() != 0 {
		t.Fatalf("pinned entries consumed the budget: Len = %d", c.Len())
	}
	// Budget pressure cannot evict pinned entries.
	insist(c, addr(1), mkNode(0, 100))
	insist(c, addr(2), mkNode(100, 200))
	if e := c.Lookup(500, 2); e == nil {
		t.Fatal("pinned level-2 entry evicted under budget pressure")
	}
	// A root change drops the stale top structure but keeps the root pointer.
	c.SetRoot(addr(200), 4)
	if e := c.Lookup(500, 2); e != nil {
		t.Fatal("pinned entry survived a root change")
	}
	if r, lvl := c.Root(); r != addr(200) || lvl != 4 {
		t.Fatalf("Root = (%v,%d), want (%v,4)", r, lvl, addr(200))
	}
}

func TestFlushTopKeepsRoot(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, NodeSize: testFormat.NodeSize})
	c.SetRoot(addr(7), 2)
	c.Insert(addr(7), mkNodeAt(2, 0, layout.NoUpperBound), 2)
	c.FlushTop()
	if e := c.Lookup(100, 2); e != nil {
		t.Error("FlushTop kept a pinned copy")
	}
	if r, lvl := c.Root(); r != addr(7) || lvl != 2 {
		t.Errorf("FlushTop dropped the root: (%v,%d)", r, lvl)
	}
}

func TestInvalidate(t *testing.T) {
	c := flat(1024)
	c.Insert(addr(1), mkNode(100, 200), 0)
	e := c.Lookup(150, 1)
	if e == nil {
		t.Fatal("expected hit")
	}
	c.Invalidate(e)
	if got := c.Lookup(150, 1); got != nil {
		t.Errorf("Lookup after Invalidate = hit on %v, want miss", got.Addr)
	}
	c.Invalidate(e)   // double-invalidate is a no-op
	c.Invalidate(nil) // nil is a no-op
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
	if c.Invalidations() != 1 {
		t.Errorf("Invalidations = %d, want 1", c.Invalidations())
	}
}

// TestInvalidateAddr drops exactly the entry caching a given address.
func TestInvalidateAddr(t *testing.T) {
	c := flat(1024)
	c.Insert(addr(1), mkNode(100, 200), 0)
	c.Insert(addr(2), mkNode(200, 300), 0)
	if !c.InvalidateAddr(addr(1)) {
		t.Fatal("InvalidateAddr missed a cached address")
	}
	if c.InvalidateAddr(addr(1)) {
		t.Fatal("InvalidateAddr hit twice")
	}
	if c.Lookup(150, 1) != nil {
		t.Error("entry survived InvalidateAddr")
	}
	if c.Lookup(250, 1) == nil {
		t.Error("unrelated entry dropped")
	}
}

// TestInvalidatePath drops the failing entry and the covering entries
// above it — the poisoned suffix of a failed speculative jump.
func TestInvalidatePath(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, NodeSize: testFormat.NodeSize, Levels: 3})
	c.Insert(addr(1), mkNodeAt(1, 100, 200), 0)
	c.Insert(addr(2), mkNodeAt(2, 0, 1000), 0)
	c.Insert(addr(3), mkNodeAt(3, 0, layout.NoUpperBound), 0)
	c.Insert(addr(4), mkNodeAt(1, 5000, 6000), 0)
	failed := c.Lookup(150, 1)
	if failed == nil {
		t.Fatal("expected a level-1 hit")
	}
	if n := c.InvalidatePath(150, failed); n != 3 {
		t.Fatalf("InvalidatePath dropped %d entries, want 3", n)
	}
	if c.Lookup(150, 1) != nil || c.Lookup(150, 2) != nil || c.Lookup(150, 3) != nil {
		t.Error("poisoned path entries survived")
	}
	if c.Lookup(5500, 1) == nil {
		t.Error("entry off the poisoned path dropped")
	}
	// A failing entry above the budgeted depth (pinned) is still dropped —
	// it must not survive to re-steer the retry.
	c.SetRoot(addr(100), 4)
	c.Insert(addr(5), mkNodeAt(4, 0, layout.NoUpperBound), 4)
	pinnedE := c.Lookup(500, 4)
	if pinnedE == nil {
		t.Fatal("expected a pinned hit")
	}
	if n := c.InvalidatePath(500, pinnedE); n != 1 {
		t.Fatalf("InvalidatePath on a pinned entry dropped %d, want 1", n)
	}
	if c.Lookup(500, 4) != nil {
		t.Error("stale pinned entry survived InvalidatePath")
	}
}

// TestInvalidateChunk drops entries that live in — or steer into — a chunk,
// through the chunk index (no predicate scan).
func TestInvalidateChunk(t *testing.T) {
	c := flat(1024)
	// addr() keeps everything in MS 0 chunk 0; place one entry's node in a
	// different chunk and one entry's child in chunk 0.
	far := rdma.MakeAddr(1, 0)
	inChunk := mkNode(100, 200) // leftmost child lands in MS 0, chunk 0
	c.Insert(far, inChunk, 0)
	outNode := layout.NewInternal(testFormat, 1, 300, 400)
	outNode.SetLeftmost(rdma.MakeAddr(1, 64))
	c.Insert(rdma.MakeAddr(1, 1024), outNode, 0)

	dropped := c.InvalidateChunk(alloc.ChunkOf(rdma.MakeAddr(0, 0)))
	if dropped != 1 {
		t.Fatalf("InvalidateChunk dropped %d, want 1 (the entry steering into the chunk)", dropped)
	}
	if c.Lookup(150, 1) != nil {
		t.Error("entry referencing the chunk survived")
	}
	if c.Lookup(350, 1) == nil {
		t.Error("entry with no reference into the chunk dropped")
	}
}

// TestEvictionBound: the cache never exceeds its entry limit under repeated
// insert pressure (repetition warms the admission gate, like repeated
// traversals of the same regions).
func TestEvictionBound(t *testing.T) {
	limit := 8
	c := flat(limit)
	for round := 0; round < 2; round++ {
		for i := uint64(0); i < 64; i++ {
			c.Insert(addr(i), mkNode(i*100, (i+1)*100), 0)
			if c.Len() > limit {
				t.Fatalf("cache grew to %d entries, limit %d", c.Len(), limit)
			}
		}
	}
	if c.Evictions() == 0 {
		t.Error("expected evictions")
	}
}

// TestAdmissionGate: when a level is full, one-shot inserts are turned away
// until their key region repeats within the decay window.
func TestAdmissionGate(t *testing.T) {
	c := flat(4)
	for i := uint64(0); i < 4; i++ {
		c.Insert(addr(i), mkNode(i*100, (i+1)*100), 0)
	}
	before := c.Len()
	c.Insert(addr(90), mkNode(9000, 9100), 0) // first touch: rejected
	if c.AdmissionRejects() == 0 {
		t.Fatal("full level admitted a one-shot insert")
	}
	if c.Lookup(9050, 1) != nil {
		t.Fatal("rejected insert is visible")
	}
	c.Insert(addr(90), mkNode(9000, 9100), 0) // second touch: admitted
	if c.Lookup(9050, 1) == nil {
		t.Fatal("repeated insert still rejected")
	}
	if c.Len() > before {
		t.Fatalf("admission exceeded the budget: %d > %d", c.Len(), before)
	}
}

// TestEvictionPrefersCold: power-of-two-choices evicts the lower-scored of
// two sampled entries, so recently used entries must survive eviction
// pressure statistically more often than stale ones. (Retention is
// probabilistic, not absolute — the comparison is the paper's design,
// §4.2.3 [48].)
func TestEvictionPrefersCold(t *testing.T) {
	const limit = 32
	c := flat(limit)
	// Fill the cache: entries 0..15 go stale, 16..31 stay hot.
	for i := uint64(0); i < limit; i++ {
		c.Insert(addr(i), mkNode(i*100, (i+1)*100), 0)
	}
	for round := 0; round < 10; round++ {
		for i := uint64(16); i < limit; i++ {
			c.Lookup(i*100+50, 1)
		}
	}
	// Apply eviction pressure: 16 fresh inserts displace 16 entries.
	for i := uint64(limit); i < limit+16; i++ {
		insist(c, addr(i), mkNode(i*100, (i+1)*100))
	}
	staleLeft, hotLeft := 0, 0
	for i := uint64(0); i < 16; i++ {
		if e := c.Lookup(i*100+50, 1); e != nil && e.Addr == addr(i) {
			staleLeft++
		}
	}
	for i := uint64(16); i < limit; i++ {
		if e := c.Lookup(i*100+50, 1); e != nil && e.Addr == addr(i) {
			hotLeft++
		}
	}
	if hotLeft <= staleLeft {
		t.Errorf("hot survivors %d <= stale survivors %d; eviction ignores recency", hotLeft, staleLeft)
	}
}

// TestEvictionProtectsDeepLevels: at equal recency the protection score
// favors the lower level — replacing a level-1 entry costs a near-full
// descent, a level-2 entry one extra read — and the cross-level backstop
// eviction applies it: when per-level share rounding lets the total exceed
// the budget, the level-2 entry is the one that goes.
func TestEvictionProtectsDeepLevels(t *testing.T) {
	c := New(Config{MaxBytes: 1, NodeSize: testFormat.NodeSize, Levels: 2})
	// Score mechanism, directly: equal recency, different levels.
	e1 := &Entry{level: 1}
	e2 := &Entry{level: 2}
	e1.lastUse.Store(100)
	e2.lastUse.Store(100)
	if c.score(e1) <= c.score(e2) {
		t.Fatalf("score(level1)=%d <= score(level2)=%d at equal recency", c.score(e1), c.score(e2))
	}
	// Behavior: a 1-entry budget with share rounding (each level's share
	// clamps to 1) triggers the cross-level backstop; the level-2 entry
	// loses despite being the more recent insert.
	insist(c, addr(1), mkNodeAt(1, 0, 100))
	c.Insert(addr(2), mkNodeAt(2, 0, 1000), 0)
	if c.Lookup(50, 1) == nil {
		t.Error("level-1 entry evicted by a level-2 newcomer")
	}
	if c.Lookup(500, 2) != nil {
		t.Error("level-2 entry survived the cross-level backstop")
	}
}

// TestBudgetSplit: with Levels=2, level 2 gets the smaller share, so a flood
// of level-2 inserts cannot displace the level-1 working set.
func TestBudgetSplit(t *testing.T) {
	const limit = 30
	c := New(Config{MaxBytes: int64(limit * testFormat.NodeSize), NodeSize: testFormat.NodeSize, Levels: 2})
	for i := uint64(0); i < 18; i++ {
		insist(c, addr(i), mkNodeAt(1, i*100, (i+1)*100))
	}
	for i := uint64(100); i < 160; i++ {
		insist(c, addr(i), mkNodeAt(2, i*100, (i+1)*100))
	}
	l1 := 0
	for i := uint64(0); i < 18; i++ {
		if e := c.Lookup(i*100+50, 1); e != nil {
			l1++
		}
	}
	if l1 < 10 {
		t.Errorf("level-2 flood displaced the level-1 set: %d/18 level-1 entries left", l1)
	}
}

// TestConcurrentMixed hammers the cache from many goroutines; correctness
// here is "no crashes, no wrong-range results, bounded size".
func TestConcurrentMixed(t *testing.T) {
	c := New(Config{MaxBytes: int64(64 * testFormat.NodeSize), NodeSize: testFormat.NodeSize, Levels: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64((w*131 + i*17) % 6400)
				lvl := uint8(1 + i%2)
				switch i % 4 {
				case 0:
					lo := k / 100 * 100
					c.Insert(addr(lo/100), mkNodeAt(lvl, lo, lo+100), 0)
				case 1:
					if e := c.Lookup(k, lvl); e != nil && !e.N.Covers(k) {
						t.Errorf("Lookup(%d) returned node [%d,%d)", k, e.N.LowerFence(), e.N.UpperFence())
						return
					}
				case 2:
					if e := c.Deepest(k, 1, 4); e != nil && !e.N.Covers(k) {
						t.Errorf("Deepest(%d) returned node [%d,%d)", k, e.N.LowerFence(), e.N.UpperFence())
						return
					}
				case 3:
					if e := c.Lookup(k, lvl); e != nil {
						c.Invalidate(e)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > c.Limit() {
		t.Errorf("size %d exceeds limit %d", c.Len(), c.Limit())
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c := flat(1024)
	c.Insert(addr(1), mkNode(0, 100), 0)
	c.Lookup(50, 1)
	c.Lookup(5000, 1)
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestTinyCache(t *testing.T) {
	// A cache smaller than one node still holds one entry (limit clamps).
	c := New(Config{MaxBytes: 1, NodeSize: testFormat.NodeSize, Levels: 1})
	if c.Limit() != 1 {
		t.Fatalf("limit = %d, want 1", c.Limit())
	}
	insist(c, addr(1), mkNode(0, 100))
	insist(c, addr(2), mkNode(100, 200))
	if c.Len() > 1 {
		t.Errorf("tiny cache holds %d entries", c.Len())
	}
}

func TestLevelsDisabled(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, NodeSize: testFormat.NodeSize, Levels: -1})
	c.Insert(addr(1), mkNode(0, 100), 0)
	if c.Lookup(50, 1) != nil {
		t.Error("budget-disabled cache admitted a level-1 entry")
	}
	// Pinned top levels still work.
	c.SetRoot(addr(9), 2)
	c.Insert(addr(9), mkNodeAt(2, 0, layout.NoUpperBound), 2)
	if c.Lookup(50, 2) == nil {
		t.Error("budget-disabled cache dropped a pinned top entry")
	}
}

func ExampleCache() {
	c := New(Config{MaxBytes: 1 << 20, NodeSize: testFormat.NodeSize})
	c.Insert(rdma.MakeAddr(0, 0x8000), mkNode(1000, 2000), 0)
	if e := c.Lookup(1500, 1); e != nil {
		fmt.Println("hit:", e.N.LowerFence(), e.N.UpperFence())
	}
	// Output: hit: 1000 2000
}
