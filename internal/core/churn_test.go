package core_test

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"sherman/internal/cluster"
	core "sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/testutil"
)

// TestMixedChurnAgainstReference runs a random mix of insert, update,
// delete and lookup on disjoint per-thread stripes and compares the whole
// tree against per-thread reference maps, in both consistency modes.
func TestMixedChurnAgainstReference(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 2)
		tr := core.New(cl, cfg)
		const threads, ops = 6, 3000
		refs := make([]map[uint64]uint64, threads)

		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := tr.NewHandle(th%2, th)
				rng := rand.New(rand.NewPCG(uint64(th)+1, 0xc0ffee))
				ref := make(map[uint64]uint64)
				base := uint64(th) * 1_000_000
				for i := 0; i < ops; i++ {
					k := base + rng.Uint64N(500) + 1
					switch rng.Uint64N(10) {
					case 0, 1, 2:
						if _, exists := ref[k]; h.Delete(k) != exists {
							t.Errorf("thread %d: delete(%d) mismatch with reference", th, k)
							return
						}
						delete(ref, k)
					case 3:
						v, ok := h.Lookup(k)
						want, exists := ref[k]
						if ok != exists || (ok && v != want) {
							t.Errorf("thread %d: lookup(%d) = (%d,%v), want (%d,%v)", th, k, v, ok, want, exists)
							return
						}
					default:
						v := rng.Uint64() | 1
						h.Insert(k, v)
						ref[k] = v
					}
				}
				refs[th] = ref
			}(th)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("%s: churn failures", cfg.Name())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", cfg.Name(), err)
		}
		h := tr.NewHandle(0, 77)
		for th, ref := range refs {
			for k, v := range ref {
				if got, ok := h.Lookup(k); !ok || got != v {
					t.Fatalf("%s: thread %d key %d = (%d,%v), want (%d,true)", cfg.Name(), th, k, got, ok, v)
				}
			}
		}
	}
}

// TestRangeUnderChurn verifies every row a concurrent scan returns was a
// value actually written for its key (leaf-level consistency, §4.4), while
// half the threads insert into the scanned region.
func TestRangeUnderChurn(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 2)
		tr := core.New(cl, cfg)
		const n = 4000
		kvs := make([]layout.KV, n)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: enc(uint64(i+1), 0)}
		}
		tr.Bulkload(kvs)

		var stop atomic.Bool
		var wg sync.WaitGroup
		for th := 0; th < 4; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := tr.NewHandle(th%2, th)
				rng := rand.New(rand.NewPCG(uint64(th)+1, 5))
				for i := uint64(1); !stop.Load(); i++ {
					k := rng.Uint64N(n) + 1
					h.Insert(k, enc(k, i))
				}
			}(th)
		}

		h := tr.NewHandle(0, 99)
		for round := 0; round < 60; round++ {
			from := uint64(round*50 + 1)
			rows := h.Range(from, 100)
			prev := uint64(0)
			for _, kv := range rows {
				if kv.Key < from || kv.Key <= prev {
					t.Fatalf("%s: scan order violated at key %d (from %d, prev %d)", cfg.Name(), kv.Key, from, prev)
				}
				prev = kv.Key
				if decKey(kv.Value) != kv.Key {
					t.Fatalf("%s: scan returned torn row: key %d carries value for key %d",
						cfg.Name(), kv.Key, decKey(kv.Value))
				}
			}
		}
		stop.Store(true)
		wg.Wait()
	}
}

// enc packs (key, version) so a reader can detect cross-key tearing.
func enc(key, ver uint64) uint64 { return key<<20 | (ver & 0xfffff) }

func decKey(v uint64) uint64 { return v >> 20 }

// TestDeleteHeavyReuse fills leaves, deletes everything, and refills:
// cleared slots must be reusable and lookups must stay exact throughout.
func TestDeleteHeavyReuse(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 1)
		tr := core.New(cl, cfg)
		h := tr.NewHandle(0, 0)
		const n = 1500
		for round := 0; round < 3; round++ {
			for k := uint64(1); k <= n; k++ {
				h.Insert(k, k+uint64(round)*1000000)
			}
			for k := uint64(1); k <= n; k++ {
				if v, ok := h.Lookup(k); !ok || v != k+uint64(round)*1000000 {
					t.Fatalf("%s round %d: lookup(%d) = (%d,%v)", cfg.Name(), round, k, v, ok)
				}
			}
			for k := uint64(1); k <= n; k++ {
				if !h.Delete(k) {
					t.Fatalf("%s round %d: delete(%d) missing", cfg.Name(), round, k)
				}
			}
			for k := uint64(1); k <= n; k += 13 {
				if _, ok := h.Lookup(k); ok {
					t.Fatalf("%s round %d: key %d survived delete", cfg.Name(), round, k)
				}
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", cfg.Name(), err)
		}
	}
}

// TestUpdateInPlaceWriteSize checks the two-level layout writes back one
// entry (~18 B at the test geometry) for non-structural updates while the
// checksum layout writes whole nodes — Figure 14(c)'s distinction.
func TestUpdateInPlaceWriteSize(t *testing.T) {
	shermanCfg := core.ShermanConfig()
	shermanCfg.Format = testutil.SmallFormat(layout.TwoLevel)
	fgCfg := core.FGPlusConfig()
	fgCfg.Format = testutil.SmallFormat(layout.Checksum)

	measure := func(cfg core.Config) int64 {
		cl := testutil.NewCluster(t, 1, 1)
		tr := core.New(cl, cfg)
		kvs := make([]layout.KV, 100)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: 1}
		}
		tr.Bulkload(kvs)
		h := tr.NewHandle(0, 0)
		h.Lookup(50) // warm the path
		before := h.Metrics().WriteBytes
		h.Insert(50, 99) // update in place, no split
		return h.Metrics().WriteBytes - before
	}

	shermanBytes := measure(shermanCfg)
	fgBytes := measure(fgCfg)
	entrySize := int64(shermanCfg.Format.LeafEntSize)
	// Sherman: one entry plus the 2-byte lock-release WRITE (combined).
	if shermanBytes > entrySize+8 {
		t.Errorf("two-level update wrote %d B, want <= entry (%d) + release", shermanBytes, entrySize)
	}
	if fgBytes < int64(fgCfg.Format.NodeSize) {
		t.Errorf("checksum update wrote %d B, want >= node size %d", fgBytes, fgCfg.Format.NodeSize)
	}
}

// TestCombineSavesRoundTrip measures that command combination reduces a
// non-structural insert from 4 round trips to 3 (Figure 14(b)).
func TestCombineSavesRoundTrip(t *testing.T) {
	measure := func(combine bool) int64 {
		cfg := core.ShermanConfig()
		cfg.Format = testutil.SmallFormat(layout.TwoLevel)
		cfg.Combine = combine
		cl := testutil.NewCluster(t, 1, 1)
		tr := core.New(cl, cfg)
		kvs := make([]layout.KV, 100)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: 1}
		}
		tr.Bulkload(kvs)
		h := tr.NewHandle(0, 0)
		h.Lookup(50) // warm the cache so locate costs no round trips
		h.Metrics().BeginOp()
		h.Insert(50, 2)
		return h.Metrics().OpRoundTrips
	}
	with := measure(true)
	without := measure(false)
	if with != 3 {
		t.Errorf("combined insert took %d round trips, want 3 (lock, read, write+unlock)", with)
	}
	if without != 4 {
		t.Errorf("uncombined insert took %d round trips, want 4", without)
	}
}

// TestHandoverSavesRoundTrip: a handed-over lock acquisition skips the
// remote CAS, giving 2-round-trip writes (Figure 14(b)'s 3.6% bucket).
func TestHandoverSavesRoundTrip(t *testing.T) {
	cfg := core.ShermanConfig()
	cfg.Format = testutil.SmallFormat(layout.TwoLevel)
	cl := testutil.NewCluster(t, 1, 1)
	tr := core.New(cl, cfg)
	kvs := make([]layout.KV, 10)
	for i := range kvs {
		kvs[i] = layout.KV{Key: uint64(i + 1), Value: 1}
	}
	tr.Bulkload(kvs)

	// Many same-CS threads hammering one key force handovers.
	const threads = 6
	var wg sync.WaitGroup
	var sawTwoRT atomic.Bool
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			h := tr.NewHandle(0, th)
			h.Lookup(5)
			for i := 0; i < 500; i++ {
				h.Metrics().BeginOp()
				h.Insert(5, uint64(i))
				if h.Metrics().OpRoundTrips == 2 {
					sawTwoRT.Store(true)
				}
			}
		}(th)
	}
	wg.Wait()
	if !sawTwoRT.Load() {
		t.Error("no 2-round-trip (handover) writes observed under same-CS contention")
	}
	if tr.LockStats().Handovers.Load() == 0 {
		t.Error("no handovers recorded")
	}
}

// TestKeySizeFormats exercises the fixed-capacity formats of the key-size
// sensitivity sweep (§5.6.1) end to end.
func TestKeySizeFormats(t *testing.T) {
	for _, ks := range []int{16, 64, 256, 1024} {
		for _, mode := range []layout.Mode{layout.TwoLevel, layout.Checksum} {
			cfg := core.ShermanConfig()
			if mode == layout.Checksum {
				cfg = core.FGPlusConfig()
			}
			cfg.Format = layout.NewFormatFixedCap(mode, ks, 32)
			if cfg.Format.LeafCap != 32 {
				t.Fatalf("key %d mode %v: leaf cap %d, want 32", ks, mode, cfg.Format.LeafCap)
			}
			cl := testutil.NewCluster(t, 2, 1)
			tr := core.New(cl, cfg)
			h := tr.NewHandle(0, 0)
			for k := uint64(1); k <= 300; k++ {
				h.Insert(k, k*5)
			}
			for k := uint64(1); k <= 300; k++ {
				if v, ok := h.Lookup(k); !ok || v != k*5 {
					t.Fatalf("key %d mode %v: lookup(%d) = (%d,%v)", ks, mode, k, v, ok)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("key %d mode %v: %v", ks, mode, err)
			}
		}
	}
}

// TestLookupPropertyRandomTrees is a seeded property test over random small
// trees:
// bulkload a random sorted set, then every loaded key must be found and a
// sample of absent keys must not.
func TestLookupPropertyRandomTrees(t *testing.T) {
	cfg := core.ShermanConfig()
	cfg.Format = testutil.SmallFormat(layout.TwoLevel)
	testutil.RunSeeds(t, 25, func(t *testing.T, seed uint64) {
		rng := testutil.RNG(seed)
		size := int(rng.Uint64N(2000)) + 1
		present := make(map[uint64]bool, size)
		kvs := make([]layout.KV, 0, size)
		k := uint64(0)
		for i := 0; i < size; i++ {
			k += rng.Uint64N(50) + 1
			kvs = append(kvs, layout.KV{Key: k, Value: k ^ 0xabcdef})
			present[k] = true
		}
		cl := cluster.New(cluster.Config{NumMS: 2, NumCS: 1})
		tr := core.New(cl, cfg)
		tr.Bulkload(kvs)
		h := tr.NewHandle(0, 0)
		for i := 0; i < 50; i++ {
			kv := kvs[rng.IntN(len(kvs))]
			if v, ok := h.Lookup(kv.Key); !ok || v != kv.Value {
				t.Fatalf("size %d: Lookup(%d) = (%d,%v), want (%d,true)", size, kv.Key, v, ok, kv.Value)
			}
			probe := rng.Uint64N(k+100) + 1
			if _, ok := h.Lookup(probe); ok != present[probe] {
				t.Fatalf("size %d: probe %d present=%v, want %v", size, probe, ok, present[probe])
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestScanBeyondStaleSteering is a regression test for a scan livelock:
// a stale top-cache copy of a since-split internal node steered scans to a
// leaf left of the cursor, and the scan retraversed through the same stale
// copy forever instead of walking the B-link sibling chain. The sequence
// below reproduces the setup: warm a handle's top cache on a small tree,
// grow the tree through that region with another handle, then scan from
// the grown tail with the stale handle.
func TestScanBeyondStaleSteering(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 1)
		tr := core.New(cl, cfg)
		kvs := make([]layout.KV, 200)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: uint64(i + 1)}
		}
		tr.Bulkload(kvs)

		// Warm reader: caches the top levels of the small tree.
		reader := tr.NewHandle(0, 0)
		reader.Lookup(100)

		// Writer: grow the right edge aggressively so the reader's cached
		// top copies go stale (the rightmost subtree splits many times).
		writer := tr.NewHandle(0, 1)
		for k := uint64(201); k <= 6000; k++ {
			writer.Insert(k, k)
		}

		// The stale reader scans from deep inside the grown region.
		rows := reader.Range(5500, 100)
		if len(rows) != 100 {
			t.Fatalf("%s: scan returned %d rows, want 100", cfg.Name(), len(rows))
		}
		for i, kv := range rows {
			want := uint64(5500 + i)
			if kv.Key != want || kv.Value != want {
				t.Fatalf("%s: row %d = %+v, want key %d", cfg.Name(), i, kv, want)
			}
		}
	}
}

// TestStaleTopCacheFlushed: after enough level-0 sibling hops the handle
// flushes its top cache, so later lookups re-fetch fresh top nodes and stop
// paying the walk. This guards the noteSiblingHop heuristic.
func TestStaleTopCacheFlushed(t *testing.T) {
	cfg := testutil.Configs()[0]
	cl := testutil.NewCluster(t, 1, 1)
	tr := core.New(cl, cfg)
	kvs := make([]layout.KV, 100)
	for i := range kvs {
		kvs[i] = layout.KV{Key: uint64(i + 1), Value: 1}
	}
	tr.Bulkload(kvs)

	reader := tr.NewHandle(0, 0)
	reader.Lookup(50) // warm top cache on the small tree

	writer := tr.NewHandle(0, 1)
	for k := uint64(101); k <= 5000; k++ {
		writer.Insert(k, k)
	}

	// First lookup in the grown region pays sibling hops and triggers the
	// flush; a subsequent lookup must be near-minimal again.
	reader.Lookup(4900)
	reader.Metrics().BeginOp()
	reader.Lookup(4901)
	if rt := reader.Metrics().OpRoundTrips; rt > 6 {
		t.Errorf("post-flush lookup took %d round trips; stale steering persists", rt)
	}
}
