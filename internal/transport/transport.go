// Package transport defines the verb surface of the disaggregated fabric:
// the Transport interface every tree client runs over, the address/op/metric
// value types shared by all implementations, and the optional capability
// interfaces (VirtualTimer, AsyncVerbs) that expose backend-specific powers
// without the core ever type-switching on the implementation.
//
// Two implementations exist:
//
//   - internal/rdma: the simulated RDMA fabric with virtual time. It also
//     implements VirtualTimer, which carries the timing-model hooks
//     (OnTimeline lanes, spin charging, atomic backlog arbitration) the
//     simulation's contention model needs.
//   - internal/transport/tcp: a real network. Memory servers are OS
//     processes (cmd/shermand) serving chunks, locks, and atomics over a
//     tagged multiplexed binary protocol; clients share one connection per
//     server with real clocks and map doorbell batches to coalesced frames.
//     It does not implement VirtualTimer — virtual-time hooks degrade to
//     synchronous no-ops — but it does implement AsyncVerbs, so pipelined
//     executors overlap real round trips.
//
// The package is dependency-free so both backends (and the packages between
// them and the tree) can share its types without import cycles.
package transport

import "fmt"

// Transport is one client thread's connection to the fabric: the one-sided
// verb surface of §2/§4, the allocation RPC, a clock, and the topology
// queries the allocator and failover paths need. Implementations are owned
// by a single goroutine, exactly like the tree Handle built on top.
//
// A Transport whose compute server has crashed panics with Crash from any
// verb; Session.run recovers that into ErrSessionDead.
type Transport interface {
	// Read performs a one-sided read of len(buf) bytes at a.
	Read(a Addr, buf []byte)
	// ReadMulti posts all reads at once (doorbell batching when they share
	// a server, parallel fan-out otherwise) and waits for completion.
	ReadMulti(ops []ReadOp)
	// Write performs a one-sided write of data at a.
	Write(a Addr, data []byte)
	// PostWrites posts dependent writes as one doorbell batch (§4.5): all
	// ops must target one memory server and apply in order.
	PostWrites(ops ...WriteOp)
	// CAS is a one-sided 8-byte compare-and-swap returning the previous
	// value and whether the swap happened.
	CAS(a Addr, old, new uint64) (uint64, bool)
	// CAS16 is the masked 2-byte CAS used by on-chip lock words (§4.3).
	CAS16(a Addr, old, new uint16) (uint16, bool)
	// FAA is a one-sided 8-byte fetch-and-add returning the old value.
	FAA(a Addr, delta uint64) uint64

	// GrowChunk asks memory server ms's allocation thread for one fresh
	// fixed-length chunk (§4.2.4) and returns its base host offset.
	GrowChunk(ms uint16) uint64

	// Now returns the clock: virtual nanoseconds on the simulator, real
	// monotonic nanoseconds on a network transport.
	Now() int64
	// Step charges d nanoseconds of local compute. Real transports treat
	// it as a no-op — local work takes whatever time it takes.
	Step(d int64)
	// AdvanceTo moves the clock forward to t if t is ahead. Real
	// transports treat it as a no-op; it exists so pipelined executors can
	// model completion-time waits without switching on the backend.
	AdvanceTo(t int64)

	// CSID identifies the compute server this client thread runs on.
	CSID() uint16
	// Epoch is the compute server's incarnation number (advances on
	// restart after a crash).
	Epoch() int64
	// Alive reports whether the compute server is still up.
	Alive() bool
	// CheckAlive panics with Crash if the compute server has died.
	CheckAlive()

	// NumMS is the number of memory servers currently in the cluster.
	NumMS() int
	// MSAlive reports whether memory server ms is reachable.
	MSAlive(ms int) bool
	// MSUsable reports whether ms should receive new allocations: alive
	// and not draining for scale-in.
	MSUsable(ms int) bool

	// Metrics exposes the per-thread verb counters. The pointer is stable
	// for the transport's lifetime.
	Metrics() *Metrics
	// Timing exposes the transport's cost constants; real transports
	// return zeros for the virtual-only entries.
	Timing() Timing
}

// Pending identifies one in-flight asynchronous verb issued through
// AsyncVerbs. It indexes the transport's internal completion-slot table, so
// it is only meaningful against the transport that issued it.
type Pending int32

// AsyncVerbs is the optional capability interface of transports that can
// genuinely overlap round trips: issue returns as soon as the request is on
// the wire (or queued behind the transport's outstanding window), and Await
// blocks until that request's response has been applied. The TCP transport
// implements it over tagged multiplexed connections; the simulator does not
// need it (virtual time overlaps round trips by accounting, not by I/O).
// Like every Transport method, these are single-goroutine: the owner issues
// and awaits its own pendings.
//
// Pipelined executors running on a real clock (VirtualTimer absent) use it
// to keep depth-N verbs in flight per memory server; when it too is absent
// they degrade to synchronous verbs.
type AsyncVerbs interface {
	// ReadAsync issues the read of len(buf) bytes at a. buf must stay
	// untouched until Await; dead-memory zero-fill is applied at Await time.
	ReadAsync(a Addr, buf []byte) Pending
	// PostWritesAsync issues one doorbell batch of dependent writes (the
	// async PostWrites: all ops on one memory server, applied in order).
	// The op data is captured at issue time and may be reused immediately.
	PostWritesAsync(ops ...WriteOp) Pending
	// Await blocks until p's response has been applied (read buffers
	// filled, or dead-memory semantics applied) and releases p.
	Await(p Pending)
}

// VirtualTimer is the optional capability interface of transports that run
// on a virtual clock. The simulator implements it; real transports do not,
// and callers must degrade gracefully (run the closure synchronously, skip
// the charge). Core code holds it as a nillable field — never a type switch
// on the concrete backend.
type VirtualTimer interface {
	// OnTimeline runs fn with the clock temporarily set to start and
	// returns the clock value fn reached; the ambient clock is restored
	// afterwards. Pipelined executors use it to run each operation on its
	// own lane's timeline.
	OnTimeline(start int64, fn func()) int64
	// SetClock forces the clock to v (backwards allowed); benchmarks and
	// recovery use it to align a fresh thread with cluster time.
	SetClock(v int64)
	// AtomicSvcNS returns the NIC service time of one atomic targeting a.
	AtomicSvcNS(a Addr) int64
	// ChargeAtomic books the cost of one atomic command — NIC pipelines,
	// bucket serialization, a round trip, a failure count — without a
	// memory effect.
	ChargeAtomic(a Addr)
	// ChargeSpin books a failed-CAS retry spin on a across [from, to) at
	// the given cadence, charging fabric resources per retry, and returns
	// the number of retries charged.
	ChargeSpin(a Addr, from, to, cadence int64) int
	// CASBacklog is CAS with backlogNS of NIC-bucket queueing prepended —
	// the arbitration-aware variant the lock manager uses.
	CASBacklog(a Addr, old, new uint64, backlogNS int64) (uint64, bool)
	// CAS16Backlog is the 16-bit masked equivalent of CASBacklog.
	CAS16Backlog(a Addr, old, new uint16, backlogNS int64) (uint16, bool)
}

// Timing carries the cost constants core code folds into its own
// bookkeeping. Virtual transports fill every field; real transports report
// zeros for virtual-only entries (a zero WraparoundGuardNS disables the
// wraparound heuristic, a zero LocalStepNS makes Step free) and real
// durations where the concept still applies (LeaseNS).
type Timing struct {
	// RTTNS is the one-sided verb round-trip estimate.
	RTTNS int64
	// LocalStepNS is the cost of one local compute step (node search,
	// cache jump).
	LocalStepNS int64
	// LocalSpinNS is the polling cadence of a local lock spin.
	LocalSpinNS int64
	// PipelineIssueNS is the issue gap between pipelined operations.
	PipelineIssueNS int64
	// WraparoundGuardNS is §4.4's version-wraparound guard window; zero
	// disables the guard (real clocks never re-read the same version
	// within a wrap window).
	WraparoundGuardNS int64
	// LeaseNS is the liveness lease after which a crashed client's locks
	// become reclaimable.
	LeaseNS int64
}

// Grower is the raw, untimed allocation view of a cluster: topology plus
// direct chunk growth with no client context and no clock. Setup-time bulk
// loading runs over it; the simulated Fabric and the TCP client cluster both
// implement it.
type Grower interface {
	// NumMS is the number of memory servers.
	NumMS() int
	// MSAlive reports whether memory server ms is reachable.
	MSAlive(ms int) bool
	// MSUsable reports whether ms should receive new allocations.
	MSUsable(ms int) bool
	// GrowChunkRaw grows one chunk on ms and returns its base offset,
	// with no timing accounting.
	GrowChunkRaw(ms uint16) uint64
}

// Crash is the panic value thrown by a transport whose compute server has
// been killed; the session layer recovers it into ErrSessionDead. It lives
// here so every backend throws the same type without importing the
// simulator (sim.Crash is an alias of it).
type Crash struct {
	// CS is the dead compute server's id.
	CS int
}

// Error makes a Crash usable as an error value after recovery.
func (c Crash) Error() string { return fmt.Sprintf("transport: compute server %d crashed", c.CS) }

// IsCrash reports whether a recovered panic value is a compute-server crash.
func IsCrash(v any) (Crash, bool) {
	c, ok := v.(Crash)
	return c, ok
}
